(* DPLL(T) satisfiability for quantifier-free linear integer arithmetic:
   the boolean skeleton of the (negation-free, after NNF) formula is encoded
   with polarity-aware Tseitin clauses and enumerated by the SAT core; each
   propositional model is checked by the Fourier-Motzkin theory solver, and
   theory conflicts are returned to the SAT core as blocking clauses.

   The common case in Grapple -- a path constraint that is one big
   conjunction -- bypasses the SAT core entirely. *)

type result = Sat | Unsat | Unknown

(* Witness produced by [check_with_model]: an integer assignment for the
   formula's variables, verified by evaluation before being returned. *)
type model = (Symbol.t * int) list

type model_result = Model_sat of model option | Model_unsat | Model_unknown

(* Statistics across the whole process, reported by the benchmarks.  The
   counters are atomic because the engine solves from several domains (the
   SMT batch fan-out and the parallel instance scheduler); totals are sums
   of per-call increments, so they are independent of interleaving — a run
   performing the same solver calls reports the same counts at any worker
   count. *)
type stats = {
  calls : int Atomic.t;
  sat_answers : int Atomic.t;
  unsat_answers : int Atomic.t;
  unknown_answers : int Atomic.t;
  theory_checks : int Atomic.t;
  sat_rounds : int Atomic.t;
  budget_hits : int Atomic.t;  (* DPLL(T) round budget exhausted -> Unknown *)
}

let stats = {
  calls = Atomic.make 0;
  sat_answers = Atomic.make 0;
  unsat_answers = Atomic.make 0;
  unknown_answers = Atomic.make 0;
  theory_checks = Atomic.make 0;
  sat_rounds = Atomic.make 0;
  budget_hits = Atomic.make 0;
}

let reset_stats () =
  Atomic.set stats.calls 0;
  Atomic.set stats.sat_answers 0;
  Atomic.set stats.unsat_answers 0;
  Atomic.set stats.unknown_answers 0;
  Atomic.set stats.theory_checks 0;
  Atomic.set stats.sat_rounds 0;
  Atomic.set stats.budget_hits 0

let max_dpllt_rounds = 10_000

(* The DPLL(T) decision budget: how many SAT-model/theory-conflict rounds a
   single [check] may spend before giving up with [Unknown].  Exposed as
   [--smt-budget] on the CLI.  Exhausting it is *sound* for the analysis:
   every caller in the engine and the pre-filters treats [Unknown] exactly
   like [Sat] (the path is assumed feasible), so a tighter budget can only
   over-approximate — it may admit an infeasible path (a potential false
   positive), never suppress a feasible one (no missed bugs).  The same
   over-approximation argument appears at [check_with_model]'s
   reconstruction fallback below. *)
let round_budget = ref max_dpllt_rounds

let set_budget n = round_budget := if n <= 0 then max_dpllt_rounds else n

(* Collect the conjuncts of a purely conjunctive NNF formula, or return
   [None] if a disjunction occurs. *)
let rec conjuncts acc (f : Formula.t) =
  match f with
  | Formula.True -> Some acc
  | Formula.False -> None
  | Formula.Atom a -> Some (a :: acc)
  | Formula.And (x, y) -> (
      match conjuncts acc x with None -> None | Some acc -> conjuncts acc y)
  | Formula.Or _ | Formula.Not _ -> None

let check_conjunction (atoms : Formula.atom list) : result =
  Atomic.incr stats.theory_checks;
  match Theory.check atoms ~neg_eqs:[] with
  | Theory.Sat -> Sat
  | Theory.Unsat -> Unsat

(* ------------------------------------------------------------------ *)
(* Tseitin encoding (positive polarity only: the NNF is negation-free). *)
(* ------------------------------------------------------------------ *)

type skeleton = {
  mutable nvars : int;
  atom_of_var : (int, Formula.atom) Hashtbl.t;
  var_of_atom : (Formula.atom, int) Hashtbl.t;  (* structural equality keys *)
  mutable clauses : int list list;
}

let fresh_var sk =
  sk.nvars <- sk.nvars + 1;
  sk.nvars

let var_for_atom sk a =
  match Hashtbl.find_opt sk.var_of_atom a with
  | Some v -> v
  | None ->
      let v = fresh_var sk in
      Hashtbl.replace sk.var_of_atom a v;
      Hashtbl.replace sk.atom_of_var v a;
      v

(* Returns the literal representing [f]; emits clauses of the form
   lit -> encoding(f). *)
let rec encode sk (f : Formula.t) : int =
  match f with
  | Formula.Atom a -> var_for_atom sk a
  | Formula.True ->
      let v = fresh_var sk in
      sk.clauses <- [ v ] :: sk.clauses;
      v
  | Formula.False ->
      let v = fresh_var sk in
      sk.clauses <- [ -v ] :: sk.clauses;
      v
  | Formula.And (x, y) ->
      let a = encode sk x and b = encode sk y in
      let v = fresh_var sk in
      sk.clauses <- [ -v; a ] :: [ -v; b ] :: sk.clauses;
      v
  | Formula.Or (x, y) ->
      let a = encode sk x and b = encode sk y in
      let v = fresh_var sk in
      sk.clauses <- [ -v; a; b ] :: sk.clauses;
      v
  | Formula.Not _ ->
      (* NNF leaves no negations (negated equalities are expanded into
         disjunctions of strict inequalities). *)
      invalid_arg "Solver.encode: negation survived NNF"

(* Atoms implied by a propositional model: positive literals keep their atom,
   negative Le literals flip into the complementary inequality, negative Eq
   literals become disequalities for the theory split. *)
let model_to_theory sk (model : bool array) :
    Formula.atom list * Linexpr.t list =
  Hashtbl.fold
    (fun v a (pos, neg_eqs) ->
      if model.(v) then (a :: pos, neg_eqs)
      else
        match a with
        | Formula.Le t ->
            (* not (t <= 0)  <=>  -t + 1 <= 0 *)
            (Formula.Le (Linexpr.add (Linexpr.neg t) (Linexpr.const 1)) :: pos,
             neg_eqs)
        | Formula.Eq t -> (pos, t :: neg_eqs))
    sk.atom_of_var ([], [])

let solve_with_skeleton (f : Formula.t) : result =
  let sk =
    { nvars = 0;
      atom_of_var = Hashtbl.create 64;
      var_of_atom = Hashtbl.create 64;
      clauses = [] }
  in
  let root = encode sk f in
  sk.clauses <- [ root ] :: sk.clauses;
  let sat = Sat.create ~nvars:sk.nvars in
  List.iter (Sat.add_clause sat) sk.clauses;
  let rec loop rounds =
    if rounds > !round_budget then begin
      Atomic.incr stats.budget_hits;
      Unknown
    end
    else begin
      Atomic.incr stats.sat_rounds;
      match Sat.solve_current sat with
      | Sat.Unsat -> Unsat
      | Sat.Sat model ->
          let pos, neg_eqs = model_to_theory sk model in
          Atomic.incr stats.theory_checks;
          (match Theory.check pos ~neg_eqs with
          | Theory.Sat -> Sat
          | Theory.Unsat ->
              (* block this assignment of the atom variables *)
              let blocking =
                Hashtbl.fold
                  (fun v _ acc -> (if model.(v) then -v else v) :: acc)
                  sk.atom_of_var []
              in
              Sat.add_clause sat blocking;
              loop (rounds + 1))
    end
  in
  loop 0

(* Decide satisfiability of an arbitrary formula. *)
let check (f : Formula.t) : result =
  Atomic.incr stats.calls;
  let record r =
    (match r with
    | Sat -> Atomic.incr stats.sat_answers
    | Unsat -> Atomic.incr stats.unsat_answers
    | Unknown -> Atomic.incr stats.unknown_answers);
    r
  in
  match Formula.nnf f with
  | Formula.True -> record Sat
  | Formula.False -> record Unsat
  | nnf -> (
      match conjuncts [] nnf with
      | Some atoms -> record (check_conjunction atoms)
      | None -> record (solve_with_skeleton nnf))

let is_sat f = match check f with Sat | Unknown -> true | Unsat -> false

(* Like [check], additionally producing a verified integer witness when the
   formula is satisfiable.  The witness is checked by evaluation; if the
   reconstruction fails (integer gaps, solver budget), the formula is still
   reported satisfiable but without a model.  Soundness under budgets: both
   this fallback and the [round_budget] cut above degrade toward "assume
   feasible" ([Unknown] is read as [Sat] everywhere downstream), so running
   out of budget can cost precision (an extra warning, a missing witness)
   but never a missed bug. *)
let check_with_model (f : Formula.t) : model_result =
  let verify model =
    let value v =
      match List.assoc_opt v model with Some n -> n | None -> 0
    in
    if Formula.eval value f then Some model else None
  in
  let of_conjunction atoms =
    match Theory.check_model atoms ~neg_eqs:[] with
    | Theory.Munsat -> Model_unsat
    | Theory.Msat None -> Model_sat None
    | Theory.Msat (Some m) -> Model_sat (verify m)
  in
  match Formula.nnf f with
  | Formula.True -> Model_sat (Some [])
  | Formula.False -> Model_unsat
  | nnf -> (
      match conjuncts [] nnf with
      | Some atoms -> of_conjunction atoms
      | None -> (
          (* fall back to plain DPLL(T); witnesses only for the common
             conjunctive case *)
          match check f with
          | Sat -> Model_sat None
          | Unknown -> Model_unknown
          | Unsat -> Model_unsat))

(* Entailment and equivalence helpers built on [check]; used by tests. *)
let entails a b = check (Formula.and_ a (Formula.not_ b)) = Unsat
let equivalent a b = entails a b && entails b a
