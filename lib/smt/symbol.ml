(* Global interning of variable names.  Terms and formulas refer to
   variables by dense integer ids, which keeps linear-expression operations
   and hashing cheap; the table maps back to names for printing.

   The table is process-wide and consulted from worker domains (the SMT
   batch fan-out and the parallel instance scheduler both decode formulas
   off the main domain), so all access is serialized by a mutex.  The
   critical sections are a hashtable probe or an array slot read — far off
   every hot path, which works on already-interned dense ids. *)

type t = int

let lock = Mutex.create ()
let names : (string, int) Hashtbl.t = Hashtbl.create 1024
let table : string array ref = ref (Array.make 1024 "")
let next = ref 0

let intern (name : string) : t =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt names name with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        if id >= Array.length !table then begin
          let bigger = Array.make (2 * Array.length !table) "" in
          Array.blit !table 0 bigger 0 (Array.length !table);
          table := bigger
        end;
        !table.(id) <- name;
        Hashtbl.replace names name id;
        id
  in
  Mutex.unlock lock;
  id

let name (id : t) : string =
  Mutex.lock lock;
  let n =
    if id < 0 || id >= !next then Printf.sprintf "?%d" id else !table.(id)
  in
  Mutex.unlock lock;
  n

let count () =
  Mutex.lock lock;
  let n = !next in
  Mutex.unlock lock;
  n

(* Fresh symbol guaranteed not to collide with interned names. *)
let fresh_counter = Atomic.make 0

let fresh prefix =
  intern (Printf.sprintf "%s$%d" prefix (1 + Atomic.fetch_and_add fresh_counter 1))

let pp ppf id = Fmt.string ppf (name id)
