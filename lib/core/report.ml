(* Bug reports produced by the checking phase. *)

type kind =
  | Error_state of string
      (* the event sequence drives the object into the FSM's error state;
         the payload names the state reached *)
  | Leak of string
      (* object reaches a program exit in the named non-accepting state *)
  | Unhandled_exception of string
      (* an explicitly thrown exception escapes every caller *)
  | Inconclusive of string
      (* the checking instance could not be completed — its budget ran out
         or storage kept failing past the retry limit — and was degraded by
         the supervisor instead of aborting the run; the payload names the
         reason.  Not a bug claim: it marks where coverage is missing. *)

type t = {
  checker : string;
  kind : kind;
  cls : string;               (* tracked class, or exception class *)
  alloc_at : Jir.Ast.pos;     (* allocation site / throw site *)
  site : Jir.Ast.pos option;  (* where the violation manifests, if distinct *)
  context : string list;      (* call chain of the allocation's clone *)
  witness : (string * int) list;
      (* a concrete input assignment under which the buggy path is taken,
         extracted from the path constraint's model (may be empty when the
         solver could not reconstruct an integer witness) *)
  trace : string list;
      (* the control path recovered from the warning's encoding, one entry
         per visited CFET node: "Method (file:lines)" *)
}

let kind_to_string = function
  | Error_state s -> Printf.sprintf "error state (%s)" s
  | Leak s -> Printf.sprintf "leak (ends in %s)" s
  | Unhandled_exception e -> Printf.sprintf "unhandled exception %s" e
  | Inconclusive why -> Printf.sprintf "inconclusive (%s)" why

(* Stable identity for deduplication: the same defect found along several
   paths or clones (or manifesting at several sites) is one warning. *)
let dedup_key (r : t) =
  ( r.checker,
    (match r.kind with
    | Error_state _ -> "error"
    | Leak _ -> "leak"
    | Unhandled_exception e -> "exn:" ^ e
    | Inconclusive _ -> "inconclusive"),
    r.cls,
    r.alloc_at.Jir.Ast.file,
    r.alloc_at.Jir.Ast.line )

let dedup (reports : t list) : t list =
  let seen = Hashtbl.create 64 in
  let reports =
    (* keep the variant that names a manifestation site when both exist *)
    List.stable_sort
      (fun a b ->
        compare (Option.is_none a.site) (Option.is_none b.site))
      reports
  in
  List.filter
    (fun r ->
      let k = dedup_key r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    reports

(* Exact deduplication: drop later copies of warnings that are
   indistinguishable to the user — same checker, same site, same rendered
   message.  [dedup] already collapses one defect found along several
   paths; this pass additionally collapses the same fully-rendered warning
   emitted once per witness path (possible when several checkers or a
   product property replay the same statement).  First occurrence wins, so
   report order is unchanged and the pass is a no-op whenever all warnings
   are distinct. *)
let dedup_exact (reports : t list) : t list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let k = (r.checker, r.site, kind_to_string r.kind, r.cls, r.alloc_at) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    reports

let pp ppf (r : t) =
  match r.kind with
  | Inconclusive _ ->
      (* no allocation site to cite: the instance was degraded as a whole *)
      Fmt.pf ppf "[%s] %s" r.checker (kind_to_string r.kind)
  | _ ->
  Fmt.pf ppf "[%s] %s: %s allocated at %s:%d%a%a" r.checker
    (kind_to_string r.kind) r.cls r.alloc_at.Jir.Ast.file
    r.alloc_at.Jir.Ast.line
    (fun ppf () ->
      match r.site with
      | Some p -> Fmt.pf ppf ", manifests at %s:%d" p.Jir.Ast.file p.Jir.Ast.line
      | None -> ())
    ()
    (fun ppf () ->
      match r.witness with
      | [] -> ()
      | w ->
          Fmt.pf ppf " (e.g. when %a)"
            (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (name, v) ->
                 Fmt.pf ppf "%s = %d" name v))
            w)
    ()

let to_string r = Fmt.str "%a" pp r

(* Multi-line rendering including the recovered path, for the CLI's
   --trace mode. *)
let pp_with_trace ppf (r : t) =
  pp ppf r;
  List.iter (fun step -> Fmt.pf ppf "\n      via %s" step) r.trace

(* One-line JSON rendering for `grapple check --json`: stable keys so bench
   tooling can diff runs textually. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : t) =
  let kind, state =
    match r.kind with
    | Error_state s -> ("error", s)
    | Leak s -> ("leak", s)
    | Unhandled_exception e -> ("exception", e)
    | Inconclusive why -> ("inconclusive", why)
  in
  let site =
    match r.site with
    | Some p ->
        Printf.sprintf {|,"site_file":"%s","site_line":%d|}
          (json_escape p.Jir.Ast.file) p.Jir.Ast.line
    | None -> ""
  in
  Printf.sprintf
    {|{"tool":"check","checker":"%s","kind":"%s","state":"%s","class":"%s","file":"%s","line":%d%s}|}
    (json_escape r.checker) kind (json_escape state) (json_escape r.cls)
    (json_escape r.alloc_at.Jir.Ast.file)
    r.alloc_at.Jir.Ast.line site
