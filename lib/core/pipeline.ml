(* The Grapple pipeline (paper §2.2): frontend -> ICFET + program graphs ->
   phase 1 path-sensitive alias computation -> phase 2 path-sensitive
   dataflow computation (per FSM property) -> phase 3 FSM checking.

   [prepare] runs the frontend once per program: loop unrolling, ICFET
   construction, clone-tree planning, alias-graph generation, and the
   phase-1 engine run.  [check_property] then runs phases 2 and 3 for one
   FSM specification against the prepared state, so several checkers share
   one alias computation exactly as in the paper. *)

module Encoding = Pathenc.Encoding
module Icfet = Symexec.Icfet
module Cfet = Symexec.Cfet
module Clone_tree = Graphgen.Clone_tree
module Alias_graph = Graphgen.Alias_graph
module Dataflow_graph = Graphgen.Dataflow_graph
module Pg = Cfl.Pointer_grammar
module Dg = Cfl.Dataflow_grammar
module Transfn = Cfl.Transfn

module Alias_engine = Engine.Make (Cfl.Pointer_grammar)
module Dataflow_engine = Engine.Make (Cfl.Dataflow_grammar)
module Escape = Analysis.Escape

type config = {
  workdir : string;
  unroll_bound : int;
  max_instances : int;
  max_graph_edges : int;
  engine : Engine.config;
  library_throwers : (string * string * string) list;
      (* (class, method, exception) for library calls that may throw *)
  track_null : bool;
      (* materialize [null] pseudo-allocations in the alias graph so the
         null-dereference checker can track them; off by default because
         the extra sources enlarge the closure for every property *)
  prefilter : bool;
      (* resolve provably non-escaping tracked allocations intraprocedurally
         (Analysis.Escape) and keep them out of the alias/dataflow graphs *)
  prefilter_properties : Fsm.t list;
      (* the FSMs whose tracked classes the pre-filter may resolve; empty
         disables the pre-filter regardless of [prefilter] *)
  summary_prefilter : bool;
      (* second triage stage (ISSUE 2): prune tracked allocations whose
         over-approximating interprocedural typestate closure
         (Analysis.Summaries) never reaches the FSM error state and never
         ends life in a non-accepting state — no report is possible, so
         they are excluded from the graphs with no local re-check *)
  alias_prefilter : bool;
      (* third triage stage (ISSUE 7): whole-program Andersen points-to.
         Tracked allocations whose points-to-reachable region can never
         flow into an event-bearing statement are pruned before instance
         creation (strictly beyond escape+summaries: field-sensitive flow
         through the heap is visible here), and Assign-labeled alias-graph
         edges no allocation can cross are sliced away before phase 1 —
         both at byte-identical warnings.  Pruning needs
         [prefilter_properties]; slicing is property-independent and runs
         whenever this flag is on *)
  max_retries : int;
      (* supervisor restarts per checking instance (each restart resumes
         from the instance's last checkpoint) before the instance is
         degraded to an [Inconclusive] report *)
  instance_budget_s : float;
      (* wall-clock budget per checking instance per attempt; 0 = unlimited.
         Applied to the per-property dataflow engines only — phase 1 is
         shared preprocessing, not an instance *)
  instance_edge_budget : int;
      (* transitive-edge budget per checking instance; 0 = unlimited *)
  resume : bool;
      (* continue from the checkpoint manifests found in [workdir]
         (`grapple check --resume`); fresh sub-runs where none validate *)
  workers : int;
      (* worker domains for the phase-2/3 instance scheduler
         ([check_properties]); 1 runs the instances in the calling domain.
         Whatever the count, the scheduler produces byte-identical reports
         and counters *)
  admission_budget : int;
      (* cap on the summed size estimates ([estimate_instance] units) of
         checking instances running concurrently; 0 = unlimited.  Bounds the
         peak memory/disk footprint of a parallel run: the largest instances
         are kept from running simultaneously.  An instance is always
         admitted when nothing else is in flight, so progress never
         starves *)
  shard_procs : int;
      (* worker *processes* for the phase-2/3 instances (ISSUE 8): 0 runs
         them in-process (on [workers] domains); N > 0 forks N crash-isolated
         worker processes supervised with heartbeats and re-dispatch.
         Reports are byte-identical at every process count *)
  heartbeat_ms : float;
      (* shard-worker heartbeat period; a worker silent for
         [Supervisor.max_missed_heartbeats] periods is presumed hung *)
  max_redispatch : int;
      (* re-dispatches of a checking instance whose worker process died
         before the instance degrades to an [Inconclusive] report *)
  shard_deadline_s : float;
      (* wall deadline per instance dispatch in shard mode; 0 = none *)
  shard_kill_nth : int;
      (* deterministic fault injection: SIGKILL the worker receiving the
         Nth instance assignment of the run (0 = off) *)
  weaken_tier : string option;
      (* TEST-ONLY soundness-harness hook (ISSUE 9): deliberately break one
         triage tier so the reference-interpreter fuzzer can prove it would
         catch a tier that drops reports.  ["escape"] keeps the escape
         filter's exclusions but discards the local re-check (its reports
         are silently lost); ["summary"]/["alias"] prune *every* tracked
         allocation at that tier instead of only the proven-clean ones.
         [None] (the default, and the only value the CLI's check command
         can produce) changes nothing *)
}

let default_config ~workdir =
  { workdir;
    unroll_bound = 2;
    max_instances = 100_000;
    max_graph_edges = 5_000_000;
    engine = Engine.default_config ~workdir;
    library_throwers = [];
    track_null = false;
    prefilter = true;
    prefilter_properties = [];
    summary_prefilter = true;
    alias_prefilter = true;
    max_retries = 3;
    instance_budget_s = 0.;
    instance_edge_budget = 0;
    resume = false;
    workers = 1;
    admission_budget = 0;
    shard_procs = 0;
    heartbeat_ms = 100.;
    max_redispatch = 3;
    shard_deadline_s = 0.;
    shard_kill_nth = 0;
    weaken_tier = None }

type timing = {
  mutable preprocess_s : float;  (* frontend + graph generation + loading *)
  mutable compute_s : float;     (* engine closures *)
  mutable check_s : float;       (* phase 3 *)
}

(* Counters maintained by the supervisor across the run.  The two [..0]
   fields snapshot process-global counters at [prepare] so [stats] can
   report per-run deltas. *)
type fault_stats = {
  mutable n_retried : int;
      (* retry events: supervisor-level instance restarts plus storage-op
         retries salvaged from failed attempts (op retries of surviving
         engines are added by [stats] from their metrics) *)
  mutable n_recovered : int;  (* instances that succeeded after >= 1 restart *)
  mutable n_inconclusive : int;  (* instances degraded past the retry limit *)
  mutable n_instance_injected : int;
      (* injected faults fired by the per-instance fault plans the parallel
         scheduler derives; the calling domain's plan never sees those ops,
         so [stats] adds this on top of its own [injected_count] delta *)
  smt_budget_hits0 : int;
  faults_injected0 : int;
}

(* Per-instance accounting: phases 2 and 3 write here instead of mutating
   [prepared] directly, so instances running on worker domains stay free of
   shared mutable state.  The scheduler merges accounts into [timing] and
   [fault_stats] in canonical instance order once every worker has joined —
   the aggregate is the same whatever the interleaving was. *)
type acct = {
  mutable a_compute_s : float;
  mutable a_check_s : float;
  mutable a_retried : int;
  mutable a_recovered : int;
  mutable a_inconclusive : int;
  mutable a_injected : int;  (* fired by this instance's derived plan *)
}

let fresh_acct () =
  { a_compute_s = 0.; a_check_s = 0.; a_retried = 0; a_recovered = 0;
    a_inconclusive = 0; a_injected = 0 }

type prepared = {
  config : config;
  program : Jir.Ast.program;   (* unrolled *)
  icfet : Icfet.t;
  callgraph : Jir.Callgraph.t;
  clones : Clone_tree.t;
  alias_graph : Alias_graph.t;
  alias_engine : Alias_engine.t;
  flows : Dataflow_graph.flows;
  n_alias_pairs : int;
  prefiltered : Escape.resolved list;
      (* tracked allocations resolved locally, excluded from the graphs *)
  summary_pruned : int list;
      (* allocation sids the interprocedural summary pre-filter proved
         unreportable for every property tracking their class; excluded
         from the graphs outright *)
  alias_pruned : int list;
      (* allocation sids the points-to pre-filter proved unreportable
         (no event-bearing statement can observe them, and they mediate no
         heap alias chain); excluded from the graphs outright *)
  n_edges_presliced : int;
      (* alias-graph edges built before points-to slicing *)
  n_edges_sliced : int;
      (* Assign edges the points-to slicer removed before phase 1 *)
  timing : timing;
  faults : fault_stats;
  sup_reg : Obs.Registry.t;
      (* the shard supervisor's metric registry (spawns, kills,
         re-dispatches, heartbeat latency); empty in in-process runs *)
}

let timed cell f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  cell := !cell +. (Unix.gettimeofday () -. t0);
  r

(* [timed] plus a trace span, so the pipeline phases show up as named
   blocks in a [--trace] timeline. *)
let timed_span name cell f =
  Obs.Trace.with_span ~cat:"pipeline" name (fun () -> timed cell f)

let merge_acct (p : prepared) (a : acct) =
  p.timing.compute_s <- p.timing.compute_s +. a.a_compute_s;
  p.timing.check_s <- p.timing.check_s +. a.a_check_s;
  p.faults.n_retried <- p.faults.n_retried + a.a_retried;
  p.faults.n_recovered <- p.faults.n_recovered + a.a_recovered;
  p.faults.n_inconclusive <- p.faults.n_inconclusive + a.a_inconclusive;
  p.faults.n_instance_injected <- p.faults.n_instance_injected + a.a_injected

(* ---------------- phase 0 + 1 ---------------- *)

(* Every allocation sid of a class some property tracks (and that an earlier
   tier has not already excluded) — the deliberately unsound "prune
   everything" set the [weaken_tier] test hook substitutes for a tier's real
   result, so the soundness harness can demonstrate it detects the lost
   reports. *)
let tracked_alloc_sids (program : Jir.Ast.program) (fsms : Fsm.t list)
    ~excluded : int list =
  let out = ref [] in
  let tracked cls = List.exists (fun f -> Fsm.is_tracked f cls) fsms in
  let alloc (s : Jir.Ast.stmt) r =
    match r with
    | Jir.Ast.Rnew (cls, _) when tracked cls ->
        if not (Hashtbl.mem excluded s.Jir.Ast.sid) then
          out := s.Jir.Ast.sid :: !out
    | _ -> ()
  in
  let rec stmt (s : Jir.Ast.stmt) =
    match s.Jir.Ast.kind with
    | Jir.Ast.Decl (_, _, Some r) | Jir.Ast.Assign (_, r) -> alloc s r
    | Jir.Ast.If (_, b1, b2) ->
        List.iter stmt b1;
        List.iter stmt b2
    | Jir.Ast.While (_, b) -> List.iter stmt b
    | Jir.Ast.Try (b, cs) ->
        List.iter stmt b;
        List.iter
          (fun (c : Jir.Ast.catch) -> List.iter stmt c.Jir.Ast.handler)
          cs
    | _ -> ()
  in
  List.iter
    (fun (m : Jir.Ast.meth) -> List.iter stmt m.Jir.Ast.body)
    (Jir.Ast.all_methods program);
  List.sort compare !out

let prepare ?(config : config option) ~workdir (program : Jir.Ast.program) :
    prepared =
  let config =
    match config with Some c -> c | None -> default_config ~workdir
  in
  let timing = { preprocess_s = 0.; compute_s = 0.; check_s = 0. } in
  let pre = ref 0. and comp = ref 0. in
  let program = timed_span "phase0.unroll" pre (fun () ->
      Jir.Unroll.unroll_program ~bound:config.unroll_bound program)
  in
  let may_throw =
    let base = Cfet.default_config program in
    let table = Hashtbl.create 16 in
    List.iter
      (fun (cls, m, e) -> Hashtbl.replace table (cls, m) e)
      config.library_throwers;
    fun (c : Jir.Ast.call) ->
      match base.Cfet.may_throw c with
      | Some e -> Some e
      | None -> Hashtbl.find_opt table (c.Jir.Ast.target_class, c.Jir.Ast.mname)
  in
  let icfet =
    timed_span "phase0.icfet" pre (fun () ->
        let base = Cfet.default_config program in
        Icfet.build ~config:{ base with Cfet.may_throw } program)
  in
  let callgraph =
    timed_span "phase0.callgraph" pre (fun () -> Jir.Callgraph.build program)
  in
  let clones =
    timed_span "phase0.clones" pre (fun () ->
        Clone_tree.build ~max_instances:config.max_instances icfet callgraph)
  in
  (* escape-based pre-filter (ISSUE 1): tracked allocations that provably
     never leave their method are resolved locally in [check_property];
     exclude them from the alias graph so neither closure ever sees them *)
  let prefiltered =
    timed_span "phase0.escape_prefilter" pre (fun () ->
        if config.prefilter && config.prefilter_properties <> [] then
          let tracked cls =
            List.exists
              (fun f -> Fsm.is_tracked f cls)
              config.prefilter_properties
          in
          Escape.analyze ~tracked program
        else [])
  in
  let excluded = Hashtbl.create 16 in
  List.iter
    (fun (r : Escape.resolved) -> Hashtbl.replace excluded r.Escape.sid ())
    prefiltered;
  (* summary-based pre-filter (ISSUE 2): an allocation is pruned only when
     every property tracking its class proves it clean — the abstraction
     over-approximates realizable event sequences, so neither closure can
     produce a report for it.  Unlike the escape filter, pruned allocations
     need no local re-check: clean means no report at all. *)
  let summary_pruned =
    timed_span "phase0.summary_prefilter" pre (fun () ->
        if config.summary_prefilter && config.prefilter_properties <> [] then begin
          let clean = Hashtbl.create 16 and dirty = Hashtbl.create 16 in
          List.iter
            (fun fsm ->
              let r = Analysis.Summaries.analyze fsm program in
              let ok = Analysis.Summaries.clean_sids r in
              List.iter
                (fun (f : Analysis.Summaries.alloc_fact) ->
                  let sid = f.Analysis.Summaries.f_site.Analysis.Summaries.a_sid in
                  if List.mem sid ok then Hashtbl.replace clean sid ()
                  else Hashtbl.replace dirty sid ())
                r.Analysis.Summaries.facts)
            config.prefilter_properties;
          Hashtbl.fold
            (fun sid () acc ->
              if Hashtbl.mem dirty sid || Hashtbl.mem excluded sid then acc
              else sid :: acc)
            clean []
          |> List.sort compare
        end
        else [])
  in
  (* weakened-summary hook: pretend the tier proved everything clean *)
  let summary_pruned =
    if config.weaken_tier = Some "summary" then
      tracked_alloc_sids program config.prefilter_properties ~excluded
    else summary_pruned
  in
  List.iter (fun sid -> Hashtbl.replace excluded sid ()) summary_pruned;
  (* points-to pre-filter (ISSUE 7): whole-program Andersen analysis over
     the unrolled program.  Its points-to sets over-approximate the CFL
     flowsTo relation the engine computes, so an allocation whose entire
     reachable event alphabet keeps every tracking property accepting can
     never yield a report — pruned outright, like the summary tier.  The
     same analysis drives the closure-graph slicer below, which is
     property-independent, so the solver runs whenever the flag is on. *)
  let pointsto, alias_pruned =
    timed_span "phase0.alias_prefilter" pre (fun () ->
        if not config.alias_prefilter then (None, [])
        else
          let pt =
            Analysis.Pointsto.analyze ~track_null:config.track_null program
          in
          let pruned =
            if config.prefilter_properties = [] then []
            else
              Analysis.Pointsto.prunable_sids pt
                ~fsms:config.prefilter_properties
              |> List.filter (fun sid -> not (Hashtbl.mem excluded sid))
          in
          (Some pt, pruned))
  in
  (* weakened-alias hook: prune every tracked allocation still in play *)
  let alias_pruned =
    if config.weaken_tier = Some "alias" then
      tracked_alloc_sids program config.prefilter_properties ~excluded
    else alias_pruned
  in
  List.iter (fun sid -> Hashtbl.replace excluded sid ()) alias_pruned;
  let alias_graph =
    timed_span "phase0.alias_graph" pre (fun () ->
        Alias_graph.build ~max_edges:config.max_graph_edges
          ~track_null:config.track_null ~exclude:(Hashtbl.mem excluded) icfet
          clones)
  in
  (* closure-graph slicing (ISSUE 7): drop Assign edges whose source
     variable has an empty points-to set — no allocation can cross them in
     any flowsTo derivation, so the phase-1 closure is unchanged while the
     engine sees fewer seed edges. *)
  let n_edges_presliced = Alias_graph.n_edges alias_graph in
  let n_edges_sliced =
    timed_span "phase0.alias_slice" pre (fun () ->
        match pointsto with
        | None -> 0
        | Some pt ->
            (* vertex [meth] fields are dense icfet indices; resolve them
               to qualified method ids once *)
            let meth_ids =
              Array.init (Icfet.n_methods icfet) (fun i ->
                  Jir.Ast.meth_id (Icfet.cfet icfet i).Cfet.meth)
            in
            Alias_graph.slice_assign_edges alias_graph
              ~reaches:(fun ~meth ~var ->
                Analysis.Pointsto.nonempty pt ~meth_id:meth_ids.(meth) ~var))
  in
  let faults =
    { n_retried = 0; n_recovered = 0; n_inconclusive = 0;
      n_instance_injected = 0;
      smt_budget_hits0 = Atomic.get Smt.Solver.stats.Smt.Solver.budget_hits;
      faults_injected0 = Engine.Faults.injected_count () }
  in
  let alias_workdir = Filename.concat config.workdir "alias" in
  let engine_config = { config.engine with Engine.workdir = alias_workdir } in
  let mk_alias_engine () =
    let e =
      Alias_engine.create ~config:engine_config
        ~decode:(fun enc -> Icfet.constraint_of icfet enc)
        ~workdir:alias_workdir ()
    in
    timed_span "phase1.seed" pre (fun () ->
        Alias_graph.iter_edges alias_graph (fun edge ->
            Alias_engine.add_seed e ~src:edge.Alias_graph.src
              ~dst:edge.Alias_graph.dst ~label:edge.Alias_graph.label
              ~enc:edge.Alias_graph.enc));
    e
  in
  (* The shared phase-1 computation is supervised like a checking instance —
     retried with backoff, each retry resuming from the engine's last
     checkpoint — except that failure past the retry limit propagates:
     without alias facts there is no instance left to degrade.  Collecting
     the flowsTo facts is part of the attempt (it re-reads the partitions,
     so it can hit the same faults as the run). *)
  let rec run_alias attempt =
    let e = mk_alias_engine () in
    match
      timed_span "phase1.alias_closure" comp (fun () ->
          Alias_engine.run ~resume:(config.resume || attempt > 0) e);
      (* collect flowsTo facts rooted at allocation sites: the in-memory
         alias results phase 2 queries (§2.2) *)
      let flows : Dataflow_graph.flows = Hashtbl.create 1024 in
      let n_alias_pairs = ref 0 in
      timed_span "phase1.collect_flows" comp (fun () ->
          Alias_engine.iter_result_edges e (fun edge ->
              match edge.Alias_engine.label with
              | Pg.Flows_to -> (
                  match Alias_graph.info alias_graph edge.Alias_engine.src with
                  | Alias_graph.Obj_vertex _ ->
                      incr n_alias_pairs;
                      let cur =
                        Option.value ~default:[]
                          (Hashtbl.find_opt flows edge.Alias_engine.src)
                      in
                      Hashtbl.replace flows edge.Alias_engine.src
                        ((edge.Alias_engine.dst, edge.Alias_engine.enc) :: cur)
                  | Alias_graph.Var_vertex _ -> ())
              | _ -> ()));
      (flows, !n_alias_pairs)
    with
    | flows, n_alias_pairs ->
        if attempt > 0 then faults.n_recovered <- faults.n_recovered + 1;
        (e, flows, n_alias_pairs)
    | exception ((Engine.Faults.Injected _ | Sys_error _
                 | Engine.Budget_exhausted _) as exn) ->
        (* keep the failed attempt's op-retry count in the run totals *)
        faults.n_retried <-
          faults.n_retried
          + Engine.Metrics.count (Alias_engine.metrics e).Engine.Metrics.retries;
        if attempt >= config.max_retries then raise exn
        else begin
          faults.n_retried <- faults.n_retried + 1;
          Unix.sleepf
            (Engine.backoff_delay_s ~seed:config.engine.Engine.retry_seed
               ~base_ms:config.engine.Engine.retry_base_ms ~attempt);
          run_alias (attempt + 1)
        end
  in
  let alias_engine, flows, n_alias_pairs = run_alias 0 in
  timing.preprocess_s <- !pre;
  timing.compute_s <- !comp;
  (* weakened-escape hook: keep the exclusions but lose the local re-check *)
  let prefiltered =
    if config.weaken_tier = Some "escape" then [] else prefiltered
  in
  { config; program; icfet; callgraph; clones; alias_graph; alias_engine;
    flows; n_alias_pairs; prefiltered; summary_pruned; alias_pruned;
    n_edges_presliced; n_edges_sliced; timing; faults;
    sup_reg = Obs.Registry.create () }

(* ---------------- phases 2 and 3 for one property ---------------- *)

(* What a shard worker reports about its instance in place of live engine
   state (which cannot cross the process boundary): the scalar totals
   [stats] needs plus the engine's full metric registry — plain data, so
   the whole record marshals. *)
type shard_summary = {
  sm_vertices : int;     (* dataflow-graph vertices *)
  sm_seed_edges : int;
  sm_total_edges : int;  (* exact, counted by the worker before exit *)
  sm_partitions : int;
  sm_metrics : Obs.Registry.t;
}

type property_result = {
  fsm : Fsm.t;
  reports : Report.t list;
  degraded : string option;
      (* [Some reason] when the supervisor gave up on this instance; its
         only report is the matching [Inconclusive] entry *)
  dataflow_engine : Dataflow_engine.t option;  (* [None] when degraded *)
  dataflow_graph : Dataflow_graph.t option;
  summary : shard_summary option;
      (* present when the instance ran in a shard worker process *)
}

let context_strings (p : prepared) inst =
  let rec go inst acc =
    let i = Clone_tree.instance p.clones inst in
    let meth_id =
      Jir.Ast.meth_id (Icfet.cfet p.icfet i.Clone_tree.meth).Cfet.meth
    in
    match i.Clone_tree.parent with
    | None -> meth_id :: acc
    | Some (caller, _) -> go caller (meth_id :: acc)
  in
  go inst []

(* A human-relevant witness: keep entry/method parameters (symbols of the
   form Method::param with no statement suffix and no generated marker) and
   order them by name. *)
let witness_of_constraint (f : Smt.Formula.t) : (string * int) list =
  match Smt.Solver.check_with_model f with
  | Smt.Solver.Model_sat (Some model) ->
      model
      |> List.filter_map (fun (sym, v) ->
             let name = Smt.Symbol.name sym in
             if
               String.length name > 0
               && (not (String.contains name '@'))
               && (not (String.contains name '$'))
             then Some (name, v)
             else None)
      |> List.sort_uniq compare
  | Smt.Solver.Model_sat None | Smt.Solver.Model_unsat
  | Smt.Solver.Model_unknown ->
      []

(* Phase 3 for one pre-filtered allocation: run the FSM directly over the
   event sequence of each feasible local path.  Leaks need no exit-kind
   check: qualified methods have no exceptional exits, so every complete
   path ends in a normal return. *)
let prefiltered_reports (fsm : Fsm.t) (r : Escape.resolved) : Report.t list =
  (* the enumerator recorded the raw call statements; resolve each against
     this property's event matcher so declared patterns and guards agree
     with the graph builder *)
  let call_of_stmt (s : Jir.Ast.stmt) =
    match s.Jir.Ast.kind with
    | Jir.Ast.Expr c
    | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
    | Jir.Ast.Assign (_, Jir.Ast.Rcall c) ->
        Some c
    | _ -> None
  in
  List.concat_map
    (fun (path : Escape.path) ->
      match Smt.Solver.check path.Escape.cond with
      | Smt.Solver.Unsat -> []
      | Smt.Solver.Sat | Smt.Solver.Unknown ->
          let state, error_site =
            List.fold_left
              (fun (st, site) (_, (s : Jir.Ast.stmt)) ->
                match
                  Option.bind (call_of_stmt s)
                    (Fsm.call_event fsm ~meth:r.Escape.meth)
                with
                | None -> (st, site)
                | Some ev ->
                    let st' = Fsm.step fsm st ev in
                    if site = None && st' = fsm.Fsm.error then
                      (st', Some s.Jir.Ast.at)
                    else (st', site))
              (fsm.Fsm.initial, None) path.Escape.events
          in
          let mk kind site =
            { Report.checker = fsm.Fsm.name;
              kind;
              cls = r.Escape.cls;
              alloc_at = r.Escape.at;
              site;
              context = [ r.Escape.meth_id ];
              witness = witness_of_constraint path.Escape.cond;
              trace =
                [ Printf.sprintf "%s (%s:%d)" r.Escape.meth_id
                    r.Escape.at.Jir.Ast.file r.Escape.at.Jir.Ast.line ] }
          in
          if state = fsm.Fsm.error then
            [ mk
                (Report.Error_state
                   (Fsm.describe_state fsm state ~cls:r.Escape.cls))
                error_site ]
          else if not (Fsm.is_accepting fsm state) then
            [ mk
                (Report.Leak (Fsm.describe_state fsm state ~cls:r.Escape.cls))
                None ]
          else [])
    r.Escape.paths

(* The degraded stand-in for an instance the supervisor gave up on: one
   [Inconclusive] report so the gap in coverage is visible in the output,
   no engine state. *)
let inconclusive_result (fsm : Fsm.t) (reason : string) : property_result =
  { fsm;
    reports =
      [ { Report.checker = fsm.Fsm.name;
          kind = Report.Inconclusive reason;
          cls = "";
          alloc_at = { Jir.Ast.file = "<" ^ fsm.Fsm.name ^ ">"; line = 0 };
          site = None;
          context = [];
          witness = [];
          trace = [] } ];
    degraded = Some reason;
    dataflow_engine = None;
    dataflow_graph = None;
    summary = None }

(* Best-effort removal of a degraded instance's partition files: nothing
   will resume from them, and the workdir may be long-lived. *)
let sweep_instance_workdir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

(* Per-instance engine configuration: the pipeline-level budgets override
   the engine defaults when set. *)
let instance_engine_config (config : config) ~workdir : Engine.config =
  { config.engine with
    Engine.workdir;
    edge_budget =
      (if config.instance_edge_budget > 0 then config.instance_edge_budget
       else config.engine.Engine.edge_budget);
    wall_budget_s =
      (if config.instance_budget_s > 0. then config.instance_budget_s
       else config.engine.Engine.wall_budget_s) }

(* One attempt at phases 2 and 3 for one property; raises on storage faults
   that survived the engine's op-level retries and on budget exhaustion.
   All accounting goes to [acct] — never to [p] — so the attempt can run on
   a worker domain without sharing mutable state with its siblings. *)
let attempt_property (p : prepared) (fsm : Fsm.t) ~(acct : acct) ~resume :
    property_result =
  let comp = ref 0. and chk = ref 0. in
  let dg =
    timed_span "phase2.dataflow_graph" comp (fun () ->
        Dataflow_graph.build p.icfet p.clones p.alias_graph p.flows fsm)
  in
  let workdir = Filename.concat p.config.workdir ("df-" ^ fsm.Fsm.name) in
  let engine_config = instance_engine_config p.config ~workdir in
  let engine =
    Dataflow_engine.create ~config:engine_config
      ~decode:(fun enc -> Icfet.constraint_of p.icfet enc)
      ~workdir ()
  in
  List.iter
    (fun (s : Dataflow_graph.seed) ->
      Dataflow_engine.add_seed engine ~src:s.Dataflow_graph.src
        ~dst:s.Dataflow_graph.dst ~label:s.Dataflow_graph.label
        ~enc:s.Dataflow_graph.enc)
    (Dataflow_graph.seeds dg);
  (try
     timed_span "phase2.dataflow_closure" comp (fun () ->
         Dataflow_engine.run ~resume engine)
   with exn ->
     (* keep the failed attempt's op-retry count in the run totals *)
     acct.a_retried <-
       acct.a_retried
       + Engine.Metrics.count
           (Dataflow_engine.metrics engine).Engine.Metrics.retries;
     raise exn);
  (* phase 3: interpret Track edges against the FSM *)
  let registry = Dataflow_graph.registry dg in
  let by_source = Hashtbl.create 64 in
  List.iter
    (fun (tr : Dataflow_graph.tracked) ->
      Hashtbl.replace by_source tr.Dataflow_graph.source_vertex tr)
    (Dataflow_graph.tracked dg);
  let reports = ref [] in
  timed_span "phase3.fsm_check" chk (fun () ->
      Dataflow_engine.iter_result_edges engine (fun e ->
          match
            (e.Dataflow_engine.label, Hashtbl.find_opt by_source e.Dataflow_engine.src)
          with
          | Dg.Track f, Some tr ->
              let state = Transfn.apply registry f fsm.Fsm.initial in
              let mk kind site =
                { Report.checker = fsm.Fsm.name;
                  kind;
                  cls = tr.Dataflow_graph.cls;
                  alloc_at = tr.Dataflow_graph.at;
                  site;
                  context = context_strings p tr.Dataflow_graph.alloc_inst;
                  witness =
                    witness_of_constraint
                      (Icfet.constraint_of p.icfet e.Dataflow_engine.enc);
                  trace = Icfet.trace_of p.icfet e.Dataflow_engine.enc }
              in
              if state = fsm.Fsm.error then begin
                let site =
                  Option.map
                    (fun (s : Jir.Ast.stmt) -> s.Jir.Ast.at)
                    (Dataflow_graph.event_site dg e.Dataflow_engine.dst)
                in
                reports :=
                  mk
                    (Report.Error_state
                       (Fsm.describe_state fsm state ~cls:tr.Dataflow_graph.cls))
                    site
                  :: !reports
              end
              else begin
                (* leaks are reported at normal program exits only: paths
                   that die from an uncaught exception terminate the
                   process, which reclaims the resource *)
                match Dataflow_graph.exit_kind dg e.Dataflow_engine.dst with
                | Some Dataflow_graph.Exit_normal
                  when not (Fsm.is_accepting fsm state) ->
                    reports :=
                      mk
                        (Report.Leak
                           (Fsm.describe_state fsm state
                              ~cls:tr.Dataflow_graph.cls))
                        None
                      :: !reports
                | _ -> ()
              end
          | _ -> ()));
  (* allocations the pre-filter kept out of the graphs are checked here,
     against the same FSM, from their locally-enumerated event paths *)
  timed_span "phase3.prefiltered" chk (fun () ->
      List.iter
        (fun (r : Escape.resolved) ->
          if Fsm.is_tracked fsm r.Escape.cls then
            List.iter
              (fun rep -> reports := rep :: !reports)
              (prefiltered_reports fsm r))
        p.prefiltered);
  acct.a_compute_s <- acct.a_compute_s +. !comp;
  acct.a_check_s <- acct.a_check_s +. !chk;
  { fsm; reports = Report.dedup (List.rev !reports); degraded = None;
    dataflow_engine = Some engine; dataflow_graph = Some dg; summary = None }

(* Phases 2 and 3 for one property, supervised: on a storage fault that
   outlived the engine's own op-level retries, or on budget exhaustion, the
   instance is restarted with deterministic exponential backoff — resuming
   from its last checkpoint, so each attempt makes net progress — up to
   [max_retries] times, after which it degrades to an [Inconclusive] report
   instead of aborting the run.  Simulated crashes ([Faults.Crash]) are
   deliberately not caught. *)
let supervise ?(resume_first = false) (p : prepared) (fsm : Fsm.t)
    ~(acct : acct) : property_result =
  (* [resume_first]: the very first attempt already resumes from the
     instance's checkpoint manifest — a shard worker re-dispatched after its
     predecessor died continues that predecessor's work *)
  let rec go attempt =
    match
      attempt_property p fsm ~acct
        ~resume:(p.config.resume || resume_first || attempt > 0)
    with
    | r ->
        if attempt > 0 then acct.a_recovered <- acct.a_recovered + 1;
        r
    | exception ((Engine.Faults.Injected _ | Sys_error _
                 | Engine.Budget_exhausted _) as exn) ->
        let reason =
          match exn with
          | Engine.Faults.Injected r | Sys_error r -> r
          | Engine.Budget_exhausted r -> r
          | _ -> Printexc.to_string exn
        in
        if attempt < p.config.max_retries then begin
          acct.a_retried <- acct.a_retried + 1;
          Unix.sleepf
            (Engine.backoff_delay_s ~seed:p.config.engine.Engine.retry_seed
               ~base_ms:p.config.engine.Engine.retry_base_ms ~attempt);
          go (attempt + 1)
        end
        else begin
          acct.a_inconclusive <- acct.a_inconclusive + 1;
          sweep_instance_workdir
            (Filename.concat p.config.workdir ("df-" ^ fsm.Fsm.name));
          inconclusive_result fsm reason
        end
  in
  go 0

let check_property (p : prepared) (fsm : Fsm.t) : property_result =
  let acct = fresh_acct () in
  let r = supervise p fsm ~acct in
  merge_acct p acct;
  r

(* ---------------- parallel instance scheduler (ISSUE 4) ----------------

   Phases 2 and 3 are independent across properties: each checking instance
   owns its private workdir ([df-<name>]), engine, metrics, and retry
   state, and only reads the shared phase-0/1 results.  The scheduler runs
   one run's instances on a fixed pool of worker domains:

   - instances are queued largest-estimated-first so the long poles start
     as early as possible;
   - an optional admission budget bounds the summed estimates in flight,
     keeping the biggest instances from peaking together;
   - when a fault plan is installed, each instance runs under a plan
     *derived* from it, salted with the instance's stable identity: its
     fault stream depends only on its own operation history, never on how
     instances interleave across workers;
   - per-instance accounting is merged in canonical (input) order after
     every worker has joined.

   Reports, fault counters, and statistics are therefore byte-identical at
   every worker count, and a crashed parallel run's checkpoints can be
   resumed by a run with any other worker count.  Simulated crashes
   ([Faults.Crash]) behave like a process kill: the pool stops pulling
   work and the crash is re-raised once all workers have joined, with
   nothing of the in-memory run surviving — exactly what [--resume] is
   for. *)

type schedule_entry = {
  s_instance : string;  (* the FSM / checker name *)
  s_worker : int;       (* worker slot that ran it *)
  s_estimate : int;     (* size estimate that ordered the queue *)
  s_wall_s : float;     (* wall-clock of the instance on its worker *)
}

(* Cheap deterministic proxy for an instance's phase-2/3 size: its tracked
   allocation vertices weighted by their alias fan-out — approximately the
   dataflow seeds the instance will feed its engine. *)
let estimate_instance (p : prepared) (fsm : Fsm.t) : int =
  let n = ref 0 in
  for v = 0 to Alias_graph.n_vertices p.alias_graph - 1 do
    match Alias_graph.info p.alias_graph v with
    | Alias_graph.Obj_vertex { cls; _ } when Fsm.is_tracked fsm cls ->
        let fanout =
          match Hashtbl.find_opt p.flows v with
          | Some l -> List.length l
          | None -> 0
        in
        n := !n + 1 + fanout
    | _ -> ()
  done;
  !n

(* Largest first; ties broken by name so the order is deterministic. *)
let order_items (p : prepared) (fsms : Fsm.t list) =
  List.mapi (fun idx fsm -> (idx, fsm, estimate_instance p fsm)) fsms
  |> List.sort (fun (_, f1, e1) (_, f2, e2) ->
         match compare e2 e1 with
         | 0 -> compare f1.Fsm.name f2.Fsm.name
         | c -> c)

let check_properties_domains ?workers (p : prepared) (fsms : Fsm.t list) :
    property_result list * schedule_entry list =
  let workers =
    match workers with Some w -> max 1 w | None -> max 1 p.config.workers
  in
  let n = List.length fsms in
  if n = 0 then ([], [])
  else begin
    let queue = ref (order_items p fsms) in
    let mu = Mutex.create () in
    let cond = Condition.create () in
    let in_flight = ref 0 in
    let stop = Atomic.make false in
    let results : property_result option array = Array.make n None in
    let accts : acct option array = Array.make n None in
    let entries : schedule_entry option array = Array.make n None in
    let failure : exn option Atomic.t = Atomic.make None in
    let budget = p.config.admission_budget in
    let pop () =
      Mutex.lock mu;
      let rec go () =
        if Atomic.get stop || !queue = [] then None
        else
          let fits (_, _, est) =
            budget <= 0 || !in_flight = 0 || !in_flight + est <= budget
          in
          match List.find_opt fits !queue with
          | Some ((_, _, est) as item) ->
              queue := List.filter (fun x -> x != item) !queue;
              in_flight := !in_flight + est;
              Some item
          | None ->
              (* everything queued is over the admission budget right now:
                 wait for a running instance to finish and retry *)
              Condition.wait cond mu;
              go ()
      in
      let r = go () in
      Mutex.unlock mu;
      r
    in
    let finished est =
      Mutex.lock mu;
      in_flight := !in_flight - est;
      Condition.broadcast cond;
      Mutex.unlock mu
    in
    (* the base plan is captured in the calling domain; each instance runs
       under a derived stream keyed to its own worker-independent identity *)
    let base_plan = Engine.Faults.current () in
    let run_instance ~slot (idx, fsm, est) =
      Obs.Trace.with_span ~cat:"scheduler"
        ~args:[ ("instance", Obs.Trace.Str fsm.Fsm.name);
                ("worker", Obs.Trace.Int slot);
                ("estimate", Obs.Trace.Int est) ]
        "scheduler.instance"
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let acct = fresh_acct () in
      let saved = Engine.Faults.current () in
      let plan =
        Option.map
          (fun b ->
            Engine.Faults.derive b
              ~salt:(Engine.Faults.salt_of_string fsm.Fsm.name))
          base_plan
      in
      (match plan with
      | Some pl -> Engine.Faults.install pl
      | None -> Engine.Faults.clear ());
      Engine.Faults.set_scope (Some ("df-" ^ fsm.Fsm.name));
      Fun.protect
        ~finally:(fun () ->
          Engine.Faults.set_scope None;
          match saved with
          | Some pl -> Engine.Faults.install pl
          | None -> Engine.Faults.clear ())
        (fun () ->
          let r = supervise p fsm ~acct in
          (match plan with
          | Some pl -> acct.a_injected <- pl.Engine.Faults.n_injected
          | None -> ());
          results.(idx) <- Some r;
          accts.(idx) <- Some acct;
          entries.(idx) <-
            Some
              { s_instance = fsm.Fsm.name; s_worker = slot; s_estimate = est;
                s_wall_s = Unix.gettimeofday () -. t0 })
    in
    let worker slot =
      let rec loop () =
        match pop () with
        | None -> ()
        | Some ((_, _, est) as item) -> (
            match run_instance ~slot item with
            | () ->
                finished est;
                loop ()
            | exception exn ->
                (* a simulated crash (or unexpected error) kills the run:
                   record the first, stop the pool, wake any waiters *)
                ignore (Atomic.compare_and_set failure None (Some exn));
                Atomic.set stop true;
                finished est)
      in
      loop ()
    in
    let pool = min workers n in
    if pool <= 1 then worker 0
    else begin
      (* the pool takes priority over the engines' own solver fan-out:
         reserving a slot per worker makes [solve_batch] inside the workers
         degrade to sequential solving instead of oversubscribing the
         machine W×S ways *)
      Engine.Domains.reserve pool;
      Fun.protect
        ~finally:(fun () -> Engine.Domains.release pool)
        (fun () ->
          List.init pool (fun slot ->
              Engine.Domains.spawn (fun () -> worker slot))
          |> List.iter Domain.join)
    end;
    (match Atomic.get failure with Some exn -> raise exn | None -> ());
    (* merge the per-instance accounts in canonical order: float additions
       happen in the same sequence at every worker count *)
    for idx = 0 to n - 1 do
      match accts.(idx) with
      | Some a -> merge_acct p a
      | None -> assert false
    done;
    ( List.init n (fun idx -> Option.get results.(idx)),
      List.init n (fun idx -> Option.get entries.(idx)) )
  end

(* ---------------- supervised multi-process shard runtime (ISSUE 8) ----

   The same instances, scheduled largest-estimated-first like the domain
   pool, but each dispatch runs in a forked worker *process*: an instance
   that OOMs, segfaults, or wedges takes down only its worker.  The
   [Engine.Supervisor] kills and replaces dead/hung workers and re-dispatches
   their in-flight instance, which resumes from the instance's checkpoint
   manifest ([supervise ~resume_first]); past [max_redispatch] losses the
   instance degrades to [Inconclusive], the same contract as budget
   exhaustion.  Each dispatch attempt re-derives the instance's fault plan
   from scratch (fresh counters, same salt), so its fault stream depends
   only on its own operation history — reports are byte-identical at any
   process count and any crash schedule.  Results return as marshalled
   [shard_account] frames and are merged in canonical instance order. *)

(* The frame a worker sends back for one completed instance. *)
type shard_account = {
  sa_reports : Report.t list;
  sa_degraded : string option;
  sa_acct : acct;
  sa_summary : shard_summary option;
}

(* Runs inside the forked worker: one supervised instance attempt chain,
   ending with the engine-state summary (computed while the engine is still
   alive — it dies with the process). *)
let run_shard_instance (p : prepared) (fsm : Fsm.t) ~base_plan ~attempt :
    string =
  let acct = fresh_acct () in
  let plan =
    Option.map
      (fun b ->
        Engine.Faults.derive b
          ~salt:(Engine.Faults.salt_of_string fsm.Fsm.name))
      base_plan
  in
  (match plan with
  | Some pl -> Engine.Faults.install pl
  | None -> Engine.Faults.clear ());
  Engine.Faults.set_scope (Some ("df-" ^ fsm.Fsm.name));
  let r = supervise ~resume_first:(attempt > 0) p fsm ~acct in
  (match plan with
  | Some pl -> acct.a_injected <- pl.Engine.Faults.n_injected
  | None -> ());
  (* the summary's partition reload must not fault: the plan has done its
     deterministic work for this instance by now *)
  Engine.Faults.set_scope None;
  Engine.Faults.clear ();
  let summary =
    match r.dataflow_engine with
    | None -> None
    | Some e ->
        (* [total_edges] first: it reloads partitions, matching the order
           the in-process [stats] path reads them in *)
        let total = Dataflow_engine.total_edges e in
        let m = Dataflow_engine.metrics e in
        Some
          { sm_vertices =
              Option.fold ~none:0 ~some:Dataflow_graph.n_vertices
                r.dataflow_graph;
            sm_seed_edges = Dataflow_engine.n_seed_edges e;
            sm_total_edges = total;
            sm_partitions = Dataflow_engine.n_partitions e;
            sm_metrics = Engine.Metrics.registry m }
  in
  Marshal.to_string
    { sa_reports = r.reports; sa_degraded = r.degraded; sa_acct = acct;
      sa_summary = summary }
    []

let check_properties_shard (p : prepared) (fsms : Fsm.t list) :
    property_result list * schedule_entry list =
  let n = List.length fsms in
  if n = 0 then ([], [])
  else begin
    let order = Array.of_list (order_items p fsms) in
    (* captured before the fork: every worker derives from the same base *)
    let base_plan = Engine.Faults.current () in
    let sup_config =
      { Engine.Supervisor.default_config with
        Engine.Supervisor.procs = p.config.shard_procs;
        heartbeat_ms = p.config.heartbeat_ms;
        deadline_s = p.config.shard_deadline_s;
        max_redispatch = p.config.max_redispatch;
        retry_seed = p.config.engine.Engine.retry_seed;
        retry_base_ms = p.config.engine.Engine.retry_base_ms;
        kill_nth = p.config.shard_kill_nth }
    in
    let tasks = Array.map (fun (_, f, _) -> f.Fsm.name) order in
    let run_task ~task ~attempt =
      let _, fsm, _ = order.(task) in
      run_shard_instance p fsm ~base_plan ~attempt
    in
    let outcomes =
      Obs.Trace.with_span ~cat:"scheduler"
        ~args:[ ("procs", Obs.Trace.Int p.config.shard_procs);
                ("instances", Obs.Trace.Int n) ]
        "scheduler.shard"
        (fun () ->
          Engine.Supervisor.run ~reg:p.sup_reg ~config:sup_config ~tasks
            ~run_task ())
    in
    let results : property_result option array = Array.make n None in
    let accts : acct option array = Array.make n None in
    let entries : schedule_entry option array = Array.make n None in
    Array.iteri
      (fun k outcome ->
        let idx, fsm, est = order.(k) in
        match outcome with
        | Engine.Supervisor.Completed { payload; slot; wall_s } ->
            let (sa : shard_account) = Marshal.from_string payload 0 in
            results.(idx) <-
              Some
                { fsm; reports = sa.sa_reports; degraded = sa.sa_degraded;
                  dataflow_engine = None; dataflow_graph = None;
                  summary = sa.sa_summary };
            accts.(idx) <- Some sa.sa_acct;
            entries.(idx) <-
              Some
                { s_instance = fsm.Fsm.name; s_worker = slot;
                  s_estimate = est; s_wall_s = wall_s }
        | Engine.Supervisor.Degraded reason ->
            (* the instance lost [max_redispatch + 1] worker processes in a
               row: degrade it exactly like budget exhaustion would *)
            sweep_instance_workdir
              (Filename.concat p.config.workdir ("df-" ^ fsm.Fsm.name));
            let acct = fresh_acct () in
            acct.a_inconclusive <- 1;
            results.(idx) <- Some (inconclusive_result fsm reason);
            accts.(idx) <- Some acct;
            entries.(idx) <-
              Some
                { s_instance = fsm.Fsm.name; s_worker = -1; s_estimate = est;
                  s_wall_s = 0. })
      outcomes;
    (* canonical-order merge, as in the domain scheduler: the aggregate is
       independent of which worker ran what and of any crash schedule *)
    for idx = 0 to n - 1 do
      match accts.(idx) with
      | Some a -> merge_acct p a
      | None -> assert false
    done;
    ( List.init n (fun idx -> Option.get results.(idx)),
      List.init n (fun idx -> Option.get entries.(idx)) )
  end

let check_properties ?workers (p : prepared) (fsms : Fsm.t list) :
    property_result list * schedule_entry list =
  if p.config.shard_procs > 0 then check_properties_shard p fsms
  else check_properties_domains ?workers p fsms

(* ---------------- aggregate statistics (Tables 3-5, Figure 9) -------- *)

type stats = {
  n_vertices : int;
  n_edges_before : int;
  n_edges_after : int;
  preprocess_s : float;
  compute_s : float;
  total_s : float;
  n_partitions : int;
  n_iterations : int;
  n_constraints_solved : int;
  cache_enabled : bool;
  cache_lookups : int;
  cache_hits : int;
  solve_s : float;
  bytes_read : int;    (* partition bytes read across all engines *)
  bytes_written : int; (* partition bytes written across all engines *)
  breakdown : (string * float) list;
  n_prefiltered : int;  (* tracked allocations resolved without the engine *)
  n_summary_pruned : int;
      (* tracked allocations the interprocedural summary stage dropped *)
  n_alias_pruned : int;
      (* tracked allocations the points-to stage dropped *)
  n_edges_presliced : int;
      (* alias-graph edges built before points-to slicing *)
  n_edges_sliced : int;  (* Assign edges the points-to slicer removed *)
  edges_added : int;  (* transitive edges derived across all engines *)
  n_retried : int;
      (* retry events: storage-op retries plus supervisor instance restarts *)
  n_recovered : int;     (* instances that succeeded after a restart *)
  n_inconclusive : int;  (* instances degraded to [Inconclusive] *)
  n_smt_budget_hits : int;
      (* DPLL(T) budget cuts (answered Unknown => assumed feasible) *)
  n_faults_injected : int;  (* injected faults fired during this run *)
  n_corrupt_recovered : int;
      (* partition reads that recovered a valid prefix from damage *)
  registry : Obs.Registry.t;
      (* the run's full merged metric registry (engine counters/timers/
         histograms plus pipeline- and solver-level entries), for
         [--metrics-json] and programmatic consumers *)
}

(* Registry-level merge: every metric each engine registered — counters,
   timers, histograms, including ones this module never heard of — is
   summed, in canonical order (the earlier field-by-field version silently
   dropped [edges_considered]; a name-driven merge cannot lose fields). *)
let combine_metrics (ms : Engine.Metrics.t list) : Engine.Metrics.t =
  let out = Engine.Metrics.create () in
  List.iter (fun m -> Engine.Metrics.merge ~into:out m) ms;
  out

let stats (p : prepared) (props : property_result list) : stats =
  let alias_m = Alias_engine.metrics p.alias_engine in
  (* instances that ran in a shard worker carry no live engine/graph; their
     totals and metric registry come from the worker's [shard_summary] *)
  let df_ms =
    List.filter_map
      (fun pr ->
        match pr.dataflow_engine with
        | Some e -> Some (Dataflow_engine.metrics e)
        | None ->
            Option.map
              (fun s -> Engine.Metrics.of_registry s.sm_metrics)
              pr.summary)
      props
  in
  let sum f = List.fold_left (fun acc pr -> acc + f pr) 0 props in
  let sum_engines f g =
    sum (fun pr ->
        match (pr.dataflow_engine, pr.summary) with
        | Some e, _ -> f e
        | None, Some s -> g s
        | None, None -> 0)
  in
  let n_vertices =
    Alias_graph.n_vertices p.alias_graph
    + sum (fun pr ->
          match (pr.dataflow_graph, pr.summary) with
          | Some dg, _ -> Dataflow_graph.n_vertices dg
          | None, Some s -> s.sm_vertices
          | None, None -> 0)
  in
  let n_edges_before =
    Alias_engine.n_seed_edges p.alias_engine
    + sum_engines Dataflow_engine.n_seed_edges (fun s -> s.sm_seed_edges)
  in
  let n_edges_after =
    Alias_engine.total_edges p.alias_engine
    + sum_engines Dataflow_engine.total_edges (fun s -> s.sm_total_edges)
  in
  let n_partitions =
    Alias_engine.n_partitions p.alias_engine
    + sum_engines Dataflow_engine.n_partitions (fun s -> s.sm_partitions)
  in
  (* combined last: [total_edges] above reloads partitions, and under an
     active fault plan those loads can themselves be retried — summing the
     metrics afterwards keeps such retries visible in [n_retried] *)
  let m = combine_metrics (alias_m :: df_ms) in
  let count c = Engine.Metrics.count c in
  let n_retried = p.faults.n_retried + count m.Engine.Metrics.retries in
  let n_smt_budget_hits =
    max 0
      (Atomic.get Smt.Solver.stats.Smt.Solver.budget_hits
      - p.faults.smt_budget_hits0)
  in
  let n_faults_injected =
    max 0 (Engine.Faults.injected_count () - p.faults.faults_injected0)
    + p.faults.n_instance_injected
  in
  (* enrich the merged registry with the pipeline- and solver-level numbers
     so [--metrics-json] is one self-contained document *)
  let reg = Engine.Metrics.registry m in
  (* fold in the shard supervisor's counters (spawns/kills/re-dispatches,
     heartbeat histogram); empty when the run was in-process *)
  Obs.Registry.merge ~into:reg p.sup_reg;
  let set_g name v = Obs.Registry.gauge_set (Obs.Registry.gauge reg name) v in
  let set_c name v = Obs.Registry.set (Obs.Registry.counter reg name) v in
  set_g "pipeline.preprocess_s" p.timing.preprocess_s;
  set_g "pipeline.compute_s" p.timing.compute_s;
  set_g "pipeline.check_s" p.timing.check_s;
  set_c "pipeline.prefiltered" (List.length p.prefiltered);
  set_c "pipeline.summary_pruned" (List.length p.summary_pruned);
  set_c "pipeline.alias_pruned" (List.length p.alias_pruned);
  set_c "pipeline.edges_sliced" p.n_edges_sliced;
  set_c "pipeline.retried" n_retried;
  set_c "pipeline.recovered" p.faults.n_recovered;
  set_c "pipeline.inconclusive" p.faults.n_inconclusive;
  set_c "pipeline.faults_injected" n_faults_injected;
  set_c "smt.budget_hits" n_smt_budget_hits;
  { n_vertices;
    n_edges_before;
    n_edges_after;
    preprocess_s = p.timing.preprocess_s;
    compute_s = p.timing.compute_s;
    total_s = p.timing.preprocess_s +. p.timing.compute_s +. p.timing.check_s;
    n_partitions;
    n_iterations = count m.Engine.Metrics.pairs_processed;
    n_constraints_solved = count m.Engine.Metrics.constraints_solved;
    cache_enabled = p.config.engine.Engine.cache_enabled;
    cache_lookups = count m.Engine.Metrics.cache_lookups;
    cache_hits = count m.Engine.Metrics.cache_hits;
    solve_s = Engine.Metrics.seconds m.Engine.Metrics.solve_s;
    bytes_read = count m.Engine.Metrics.bytes_read;
    bytes_written = count m.Engine.Metrics.bytes_written;
    breakdown = Engine.Metrics.breakdown m;
    n_prefiltered = List.length p.prefiltered;
    n_summary_pruned = List.length p.summary_pruned;
    n_alias_pruned = List.length p.alias_pruned;
    n_edges_presliced = p.n_edges_presliced;
    n_edges_sliced = p.n_edges_sliced;
    edges_added = count m.Engine.Metrics.edges_added;
    n_retried;
    n_recovered = p.faults.n_recovered;
    n_inconclusive = p.faults.n_inconclusive;
    n_smt_budget_hits;
    n_faults_injected;
    n_corrupt_recovered = count m.Engine.Metrics.corrupt_reads;
    registry = reg }

(* Convenience wrapper: run every phase for a list of properties.  The
   pre-filter defaults to resolving against exactly the properties being
   checked; a caller-supplied non-empty [prefilter_properties] wins. *)
let check ?config ~workdir program fsms =
  let config =
    let c = match config with Some c -> c | None -> default_config ~workdir in
    if c.prefilter_properties = [] then
      { c with prefilter_properties = fsms }
    else c
  in
  let p = prepare ~config ~workdir program in
  let results, _schedule = check_properties p fsms in
  (p, results)

let cleanup (p : prepared) (props : property_result list) =
  Alias_engine.cleanup p.alias_engine;
  List.iter
    (fun pr ->
      match pr.dataflow_engine with
      | Some e -> Dataflow_engine.cleanup e
      | None ->
          (* a shard instance's partition files outlive its worker process;
             sweep its private workdir by name *)
          if pr.summary <> None then
            sweep_instance_workdir
              (Filename.concat p.config.workdir ("df-" ^ pr.fsm.Fsm.name)))
    props
