(* The checker registry: the four finite-state property checkers the paper
   evaluates (§5), the DSL-defined checkers shipped with the tool, and any
   checkers loaded from .gspec files — all ready to run against a prepared
   pipeline state. *)

module Specs = Specs
module Exception_checker = Exception_checker
module Pipeline = Grapple.Pipeline
module Report = Grapple.Report

type t = {
  name : string;
  kind : [ `Typestate of Fsm.t | `Exception_walk of Exception_checker.opts ];
}

let io () = { name = "io"; kind = `Typestate (Specs.io_fsm ()) }
let null () = { name = "null"; kind = `Typestate (Specs.null_fsm ()) }
let lock () = { name = "lock"; kind = `Typestate (Specs.lock_fsm ()) }
let socket () = { name = "socket"; kind = `Typestate (Specs.socket_fsm ()) }

let exception_ () =
  { name = "exception";
    kind = `Exception_walk Exception_checker.default_opts }

(* The paper's four checkers; [null] is an additional client built on the
   same machinery (enable explicitly). *)
let all () = [ io (); lock (); exception_ (); socket () ]

let all_with_null () = all () @ [ null () ]

(* The one shared name table: CLI parsing, the `all` alias, and the
   available-checkers error message all derive from this list. *)
let registry : (string * (unit -> t)) list =
  [ ("io", io); ("lock", lock); ("exception", exception_); ("socket", socket);
    ("null", null) ]

(* A checker compiled from a DSL property. *)
let of_spec (c : Spec.checker) : t =
  match c.Spec.c_kind with
  | Spec.Typestate fsm -> { name = c.Spec.c_name; kind = `Typestate fsm }
  | Spec.Exception_walk { handler_aware } ->
      { name = c.Spec.c_name;
        kind =
          `Exception_walk
            { Exception_checker.name = c.Spec.c_name; handler_aware } }

(* The DSL-defined checkers shipped with the tool, compiled from the
   embedded spec texts (the same texts as specs/*.gspec).  Kept out of
   [registry] so `--checkers all` and the per-property analyses keep the
   paper's checker set. *)
let dsl_registry : (string * (unit -> t)) list =
  List.concat_map
    (fun (file, text) ->
      List.map
        (fun (c : Spec.checker) -> (c.Spec.c_name, fun () -> of_spec c))
        (Spec.compile ~file text))
    Spec.Builtin.all

let names () = List.map fst registry

let dsl_names () = List.map fst dsl_registry

let find name =
  Option.map (fun (_, mk) -> mk ()) (List.find_opt (fun (n, _) -> n = name) registry)

(* Resolve a checker name against (in precedence order) the checkers
   loaded from `--spec` files, the built-in registry, and the shipped DSL
   checkers.  Unknown names raise with the full list of valid ones. *)
let resolve ?(loaded : t list = []) name : t =
  match List.find_opt (fun c -> c.name = name) loaded with
  | Some c -> c
  | None -> (
      match find name with
      | Some c -> c
      | None -> (
          match List.find_opt (fun (n, _) -> n = name) dsl_registry with
          | Some (_, mk) -> mk ()
          | None ->
              let available =
                names () @ dsl_names () @ List.map (fun c -> c.name) loaded
                |> List.sort_uniq compare
              in
              invalid_arg
                (Printf.sprintf
                   "unknown checker '%s' (available: %s)" name
                   (String.concat ", " available))))

(* The typestate FSMs of every registered checker, for analyses that run
   per-property (the interprocedural lints). *)
let fsms () =
  List.filter_map
    (fun (_, mk) ->
      match (mk ()).kind with
      | `Typestate f -> Some f
      | `Exception_walk _ -> None)
    registry

let exception_walk opts p =
  Obs.Trace.with_span ~cat:"checker" "checker.exception_walk" (fun () ->
      Exception_checker.run ~opts p)

(* Run one checker against a prepared program; returns its warnings. *)
let run (p : Pipeline.prepared) (c : t) : Report.t list =
  Report.dedup_exact
    (match c.kind with
    | `Typestate fsm -> (Pipeline.check_property p fsm).Pipeline.reports
    | `Exception_walk opts -> exception_walk opts p)

(* Run every checker, reusing the shared phase-1 results; returns per-checker
   warnings plus the property results needed for statistics. *)
let run_all (p : Pipeline.prepared) (cs : t list) :
    (string * Report.t list) list * Pipeline.property_result list =
  let props = ref [] in
  let out =
    List.map
      (fun c ->
        match c.kind with
        | `Typestate fsm ->
            let pr = Pipeline.check_property p fsm in
            props := pr :: !props;
            (c.name, Report.dedup_exact pr.Pipeline.reports)
        | `Exception_walk opts ->
            (c.name, Report.dedup_exact (exception_walk opts p)))
      cs
  in
  (out, List.rev !props)

(* [run_all] through the parallel instance scheduler: the typestate
   checkers become one scheduled batch (`--workers N` worker domains), the
   exception walk — cheap, engine-free — runs in the calling domain.  The
   per-checker output and property results come back in [cs] order, so the
   rendered report is byte-identical to [run_all] and to any other worker
   count. *)
let run_all_scheduled ?workers (p : Pipeline.prepared) (cs : t list) :
    (string * Report.t list) list
    * Pipeline.property_result list
    * Pipeline.schedule_entry list =
  let fsms =
    List.filter_map
      (fun c ->
        match c.kind with `Typestate f -> Some f | `Exception_walk _ -> None)
      cs
  in
  let props, schedule = Pipeline.check_properties ?workers p fsms in
  let rec assemble cs props =
    match cs with
    | [] -> []
    | c :: rest -> (
        match c.kind with
        | `Typestate _ -> (
            match props with
            | (pr : Pipeline.property_result) :: tl ->
                (c.name, Report.dedup_exact pr.Pipeline.reports)
                :: assemble rest tl
            | [] -> assert false)
        | `Exception_walk opts ->
            (c.name, Report.dedup_exact (exception_walk opts p))
            :: assemble rest props)
  in
  (assemble cs props, props, schedule)
