(* The checker registry: the four finite-state property checkers the paper
   evaluates (§5), ready to run against a prepared pipeline state. *)

module Specs = Specs
module Exception_checker = Exception_checker
module Pipeline = Grapple.Pipeline
module Report = Grapple.Report

type t = {
  name : string;
  kind : [ `Typestate of Fsm.t | `Exception_walk ];
}

let io () = { name = "io"; kind = `Typestate (Specs.io_fsm ()) }
let null () = { name = "null"; kind = `Typestate (Specs.null_fsm ()) }
let lock () = { name = "lock"; kind = `Typestate (Specs.lock_fsm ()) }
let socket () = { name = "socket"; kind = `Typestate (Specs.socket_fsm ()) }
let exception_ () = { name = "exception"; kind = `Exception_walk }

(* The paper's four checkers; [null] is an additional client built on the
   same machinery (enable explicitly). *)
let all () = [ io (); lock (); exception_ (); socket () ]

let all_with_null () = all () @ [ null () ]

(* The one shared name table: CLI parsing, the `all` alias, and the
   available-checkers error message all derive from this list. *)
let registry : (string * (unit -> t)) list =
  [ ("io", io); ("lock", lock); ("exception", exception_); ("socket", socket);
    ("null", null) ]

let names () = List.map fst registry

let find name =
  Option.map (fun (_, mk) -> mk ()) (List.find_opt (fun (n, _) -> n = name) registry)

(* The typestate FSMs of every registered checker, for analyses that run
   per-property (the interprocedural lints). *)
let fsms () =
  List.filter_map
    (fun (_, mk) ->
      match (mk ()).kind with `Typestate f -> Some f | `Exception_walk -> None)
    registry

(* Run one checker against a prepared program; returns its warnings. *)
let run (p : Pipeline.prepared) (c : t) : Report.t list =
  match c.kind with
  | `Typestate fsm -> (Pipeline.check_property p fsm).Pipeline.reports
  | `Exception_walk ->
      Obs.Trace.with_span ~cat:"checker" "checker.exception_walk" (fun () ->
          Exception_checker.run p)

(* Run every checker, reusing the shared phase-1 results; returns per-checker
   warnings plus the property results needed for statistics. *)
let run_all (p : Pipeline.prepared) (cs : t list) :
    (string * Report.t list) list * Pipeline.property_result list =
  let props = ref [] in
  let out =
    List.map
      (fun c ->
        match c.kind with
        | `Typestate fsm ->
            let pr = Pipeline.check_property p fsm in
            props := pr :: !props;
            (c.name, pr.Pipeline.reports)
        | `Exception_walk ->
            ( c.name,
              Obs.Trace.with_span ~cat:"checker" "checker.exception_walk"
                (fun () -> Exception_checker.run p) ))
      cs
  in
  (out, List.rev !props)

(* [run_all] through the parallel instance scheduler: the typestate
   checkers become one scheduled batch (`--workers N` worker domains), the
   exception walk — cheap, engine-free — runs in the calling domain.  The
   per-checker output and property results come back in [cs] order, so the
   rendered report is byte-identical to [run_all] and to any other worker
   count. *)
let run_all_scheduled ?workers (p : Pipeline.prepared) (cs : t list) :
    (string * Report.t list) list
    * Pipeline.property_result list
    * Pipeline.schedule_entry list =
  let fsms =
    List.filter_map
      (fun c ->
        match c.kind with `Typestate f -> Some f | `Exception_walk -> None)
      cs
  in
  let props, schedule = Pipeline.check_properties ?workers p fsms in
  let rec assemble cs props =
    match cs with
    | [] -> []
    | c :: rest -> (
        match c.kind with
        | `Typestate _ -> (
            match props with
            | (pr : Pipeline.property_result) :: tl ->
                (c.name, pr.Pipeline.reports) :: assemble rest tl
            | [] -> assert false)
        | `Exception_walk ->
            ( c.name,
              Obs.Trace.with_span ~cat:"checker" "checker.exception_walk"
                (fun () -> Exception_checker.run p) )
            :: assemble rest props)
  in
  (assemble cs props, props, schedule)
