(* The exception-handler checker (paper §5.1): finds explicitly thrown
   exceptions that never have handlers, i.e. exceptional control flow that
   escapes every (transitive) caller and terminates the process — the class
   of bugs studied by Yuan et al. that the paper reports as its largest
   category.

   The check walks the clone tree.  An exceptional CFET leaf escapes an
   instance; whether it then escapes the whole program is decided by the
   caller-side structure the CFET construction already materialized: a call
   that may throw diverges in the caller, and its false child is either the
   matching handler's code or — when no handler exists in the caller — an
   exceptional leaf that recursively escapes.  A leaf is only reported when
   its local root-to-leaf path constraint is satisfiable, making the check
   path-sensitive within the throwing method. *)

module Pipeline = Grapple.Pipeline
module Report = Grapple.Report
module Icfet = Symexec.Icfet
module Cfet = Symexec.Cfet
module Clone_tree = Graphgen.Clone_tree
module Solver = Smt.Solver

let checker_name = "exception"

(* Checker options.  [handler_aware] addresses the checker's residual
   false-positive class (paper, Table 2): when a callee throws an
   exception its signature does not declare, the CFET has no caller-side
   divergence, and the plain walk conservatively treats the throw as
   escaping even when the caller lexically wraps the call in a matching
   try/catch (the try-with-resources idiom).  A handler-aware walk checks
   the caller's handler structure before giving up.  [name] is the checker
   name stamped on reports, so a DSL-defined variant scores separately. *)
type opts = { name : string; handler_aware : bool }

let default_opts = { name = checker_name; handler_aware = false }

(* Is the statement [sid] of [m] wrapped in a try whose handlers catch
   [thrown]?  Purely lexical: inner frames are consulted first, and a
   handler's own body is protected only by the frames outside its try. *)
let handled_in_caller (m : Jir.Ast.meth) ~sid ~thrown =
  let matches (c : Jir.Ast.catch) = Cfet.catch_matches ~thrown c in
  let rec in_block b handlers =
    List.exists (fun s -> in_stmt s handlers) b
  and in_stmt (s : Jir.Ast.stmt) handlers =
    if s.Jir.Ast.sid = sid then
      List.exists (fun cs -> List.exists matches cs) handlers
    else
      match s.Jir.Ast.kind with
      | Jir.Ast.If (_, t, f) -> in_block t handlers || in_block f handlers
      | Jir.Ast.While (_, b) -> in_block b handlers
      | Jir.Ast.Try (b, cs) ->
          in_block b (cs :: handlers)
          || List.exists
               (fun (c : Jir.Ast.catch) -> in_block c.Jir.Ast.handler handlers)
               cs
      | _ -> false
  in
  in_block m.Jir.Ast.body []

(* The caller-side statement id of call [call_id] (for the handler walk). *)
let call_site_sid (icfet : Icfet.t) (ce : Icfet.call_edge) call_id =
  let caller_cfet = Icfet.cfet icfet ce.Icfet.caller_meth in
  match Hashtbl.find_opt caller_cfet.Cfet.nodes ce.Icfet.caller_node with
  | None -> None
  | Some n ->
      List.find_map
        (fun (ci : Cfet.call_info) ->
          let sid = ci.Cfet.call_stmt.Jir.Ast.sid in
          match
            Icfet.call_id_of_site icfet ~meth:ce.Icfet.caller_meth
              ~node:ce.Icfet.caller_node ~sid
          with
          | Some id when id = call_id -> Some sid
          | _ -> None)
        n.Cfet.calls

(* Does the exceptional leaf [node] of [inst], throwing [exn], escape the
   whole program?  Memoized over (instance, node). *)
let escape_analysis ?(handler_aware = false) (icfet : Icfet.t)
    (clones : Clone_tree.t) =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  (* reverse call-site map *)
  let entries_rev : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, call_id) callee ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt entries_rev callee) in
      Hashtbl.replace entries_rev callee ((caller, call_id) :: cur))
    clones.Clone_tree.by_site;
  let rec escapes ~exn inst node =
    match Hashtbl.find_opt memo (inst, node) with
    | Some b -> b
    | None ->
        Hashtbl.replace memo (inst, node) false (* cut recursion cycles *);
        let result =
          let entering =
            Option.value ~default:[] (Hashtbl.find_opt entries_rev inst)
          in
          if
            List.mem inst clones.Clone_tree.entry_instances || entering = []
          then true
          else
            List.exists
              (fun (caller, call_id) ->
                let ce = Icfet.call_edge icfet call_id in
                let caller_node = ce.Icfet.caller_node in
                (* the may-throw divergence put the call at the head of a
                   true child; the false sibling receives the exception *)
                if ce.Icfet.diverges && caller_node > 0 then begin
                  let sibling = caller_node - 1 in
                  let caller_cfet = Icfet.cfet icfet ce.Icfet.caller_meth in
                  match Hashtbl.find_opt caller_cfet.Cfet.nodes sibling with
                  | Some n -> (
                      match n.Cfet.exit with
                      | Some (Cfet.Exceptional e) ->
                          escapes ~exn:e caller sibling
                      | Some (Cfet.Normal _) | None -> false)
                  | None -> false
                end
                else
                  (* no divergence in the caller: the callee's declared
                     throws did not cover this exception.  The plain walk
                     treats this as escaping (conservative); the
                     handler-aware walk first checks whether the caller
                     lexically wraps the call in a matching try/catch. *)
                  (not handler_aware)
                  ||
                  match call_site_sid icfet ce call_id with
                  | Some sid ->
                      not
                        (handled_in_caller
                           (Icfet.cfet icfet ce.Icfet.caller_meth).Cfet.meth
                           ~sid ~thrown:exn)
                  | None -> true)
              entering
        in
        Hashtbl.replace memo (inst, node) result;
        result
  in
  escapes

(* Position to blame for an exceptional leaf: its trailing [throw], or the
   call statement that the divergence guarded (first statement of the true
   sibling). *)
let blame_position (cfet : Cfet.t) (n : Cfet.node) : Jir.Ast.pos option =
  match List.rev n.Cfet.stmts with
  | ({ Jir.Ast.kind = Jir.Ast.Throw _; _ } as s) :: _ -> Some s.Jir.Ast.at
  | _ -> (
      let sibling = n.Cfet.id + 1 in
      match Hashtbl.find_opt cfet.Cfet.nodes sibling with
      | Some sib -> (
          match sib.Cfet.stmts with s :: _ -> Some s.Jir.Ast.at | [] -> None)
      | None -> None)

(* Run the checker over a prepared pipeline state. *)
let run ?(opts = default_opts) (p : Pipeline.prepared) : Report.t list =
  let icfet = p.Pipeline.icfet in
  let clones = p.Pipeline.clones in
  let escapes =
    escape_analysis ~handler_aware:opts.handler_aware icfet clones
  in
  let reports = ref [] in
  Array.iter
    (fun (inst : Clone_tree.instance) ->
      let cfet = Icfet.cfet icfet inst.Clone_tree.meth in
      Hashtbl.iter
        (fun node_id (n : Cfet.node) ->
          match (n.Cfet.exit, List.rev n.Cfet.stmts) with
          (* only *explicitly thrown* exceptions are the checker's target
             (paper §5: "explicitly thrown exceptions never have handlers");
             leaves created by may-throw library calls are not reported *)
          | ( Some (Cfet.Exceptional exn_class),
              { Jir.Ast.kind = Jir.Ast.Throw _; _ } :: _ )
            when escapes ~exn:exn_class inst.Clone_tree.inst_id node_id ->
              (* path sensitivity: only report leaves whose local path is
                 feasible *)
              let local =
                Cfet.path_constraint cfet ~first:0 ~last:node_id
              in
              let feasible =
                match Solver.check local with
                | Solver.Sat | Solver.Unknown -> true
                | Solver.Unsat -> false
              in
              if feasible then begin
                let at =
                  Option.value ~default:Jir.Ast.no_pos
                    (blame_position cfet n)
                in
                reports :=
                  { Report.checker = opts.name;
                    kind = Report.Unhandled_exception exn_class;
                    cls = exn_class;
                    alloc_at = at;
                    site = None;
                    context = [ Jir.Ast.meth_id cfet.Cfet.meth ];
                    witness = Grapple.Pipeline.witness_of_constraint local;
                    trace =
                      Icfet.trace_of icfet
                        [ Pathenc.Encoding.Interval
                            { meth = inst.Clone_tree.meth; first = 0;
                              last = node_id } ] }
                  :: !reports
              end
          | _ -> ())
        cfet.Cfet.nodes)
    clones.Clone_tree.instances;
  Report.dedup (List.rev !reports)
