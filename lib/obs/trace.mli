(** Structured tracing: nestable spans emitted as Chrome [trace_event]
    JSON, loadable in Perfetto / [chrome://tracing].

    Tracing is a process-wide switch ([start]/[stop]).  When off — the
    default — every entry point is a near-no-op (one atomic load), so
    instrumented hot paths cost nothing in production runs and the traced
    computation behaves identically either way: the only side effects of
    tracing are clock reads and buffer appends.

    Events carry the process id, the recording domain's id (so a Perfetto
    view separates worker lanes), and optional key/value attributes. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

val start : path:string -> unit
(** Begin buffering events; [stop] writes them to [path]. *)

val stop : unit -> unit
(** Write the buffered events as [{"traceEvents":[...]}] and disable
    tracing.  A no-op when tracing was never started. *)

val is_on : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a complete ("X") event covering
    its duration.  The span is recorded even when [f] raises (the exception
    is re-raised).  Spans nest by inclusion per domain. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** Record an instant ("i") event. *)

val n_events : unit -> int
(** Number of events buffered so far (0 when off); for tests. *)
