(* Named-metric registry (see registry.mli).

   The representation is deliberately boring: a hash table from name to a
   mutable metric cell.  Handles are the cells themselves, so updating a
   metric is one mutable-field write — no lookup, no allocation — which is
   what lets the engine keep its counters hot-path cheap.

   Determinism: [merge] and every rendering function traverse the table in
   sorted-name order, so aggregating N per-domain registries produces the
   same bytes regardless of how the domains interleaved or how many there
   were.  (Counters and bucket counts are integers; gauges are float sums
   whose addition order is fixed by the canonical traversal.) *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper limits *)
  h_counts : int array;    (* length = Array.length h_bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %s already registered with another kind"
       name)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace t.tbl name (Gauge g);
      g

let default_bounds = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let histogram ?(bounds = default_bounds) t name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg
          (Printf.sprintf "Obs.Registry.histogram: bounds of %s not increasing"
             name))
    bounds;
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) ->
      if h.h_bounds <> bounds then
        invalid_arg
          (Printf.sprintf
             "Obs.Registry.histogram: %s re-registered with different bounds"
             name);
      h
  | Some _ -> kind_clash name
  | None ->
      let h =
        { h_name = name; h_bounds = Array.copy bounds;
          h_counts = Array.make (Array.length bounds + 1) 0; h_count = 0;
          h_sum = 0. }
      in
      Hashtbl.replace t.tbl name (Histogram h);
      h

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set c v = c.c_value <- v
let value c = c.c_value

let gauge_add g x = g.g_value <- g.g_value +. x
let gauge_set g x = g.g_value <- x
let gauge_value g = g.g_value

let observe h x =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x;
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || x <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_counts h = Array.copy h.h_counts

let sorted_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.tbl name with
      | Counter c -> incr ~by:c.c_value (counter into name)
      | Gauge g -> gauge_add (gauge into name) g.g_value
      | Histogram h ->
          let d = histogram ~bounds:h.h_bounds into name in
          Array.iteri (fun i n -> d.h_counts.(i) <- d.h_counts.(i) + n) h.h_counts;
          d.h_count <- d.h_count + h.h_count;
          d.h_sum <- d.h_sum +. h.h_sum)
    (sorted_names src)

(* ---------------- rendering ---------------- *)

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6f" x

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let names = sorted_names t in
  let pick f =
    List.filter_map (fun n -> f n (Hashtbl.find t.tbl n)) names
  in
  let counters =
    pick (fun n -> function
      | Counter c -> Some (Printf.sprintf "%s:%d" (json_string n) c.c_value)
      | _ -> None)
  in
  let gauges =
    pick (fun n -> function
      | Gauge g -> Some (Printf.sprintf "%s:%s" (json_string n) (json_float g.g_value))
      | _ -> None)
  in
  let hists =
    pick (fun n -> function
      | Histogram h ->
          let arr f xs =
            String.concat "," (Array.to_list (Array.map f xs))
          in
          Some
            (Printf.sprintf
               "%s:{\"bounds\":[%s],\"counts\":[%s],\"count\":%d,\"sum\":%s}"
               (json_string n)
               (arr json_float h.h_bounds)
               (arr string_of_int h.h_counts)
               h.h_count (json_float h.h_sum))
      | _ -> None)
  in
  Printf.sprintf
    "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
    (String.concat "," counters)
    (String.concat "," gauges)
    (String.concat "," hists)

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Format.fprintf ppf "%s = %d@." name c.c_value
      | Gauge g -> Format.fprintf ppf "%s = %.6f@." name g.g_value
      | Histogram h ->
          Format.fprintf ppf "%s = count:%d sum:%.6f@." name h.h_count h.h_sum)
    (sorted_names t)
