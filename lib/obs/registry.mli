(** Named-metric registry: counters, gauges, and fixed-bucket histograms.

    A registry is a flat namespace of metrics identified by string name.
    Handles ([counter], [gauge], [histogram]) are obtained once and then
    updated without any lookup, so hot loops pay a single mutable-field
    write per event.

    A registry is single-writer: each engine (and therefore each worker
    domain) owns its own, and the aggregation point merges them with
    [merge] in canonical (sorted-name) order — so the merged totals, and
    any text rendered from them, are byte-identical whatever the number of
    workers or their interleaving was. *)

type counter
type gauge
type histogram

type t

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create.  Raises [Invalid_argument] if [name] is already
    registered with a different kind. *)

val gauge : t -> string -> gauge
val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are strictly increasing bucket upper limits; an implicit
    overflow bucket is appended.  Re-obtaining an existing histogram with
    different bounds raises [Invalid_argument]. *)

val incr : ?by:int -> counter -> unit
val set : counter -> int -> unit
val value : counter -> int

val gauge_add : gauge -> float -> unit
val gauge_set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_counts : histogram -> int array
(** Per-bucket counts, overflow bucket last; a copy. *)

val merge : into:t -> t -> unit
(** Add every metric of the source into [into], creating missing ones, in
    canonical (sorted-name) order.  Counters and histogram buckets add;
    gauges add (they accumulate seconds, bytes, and similar extensive
    quantities). *)

val to_json : t -> string
(** Deterministic dump: top-level [counters]/[gauges]/[histograms] objects,
    keys sorted. *)

val pp : Format.formatter -> t -> unit
(** One [name = value] line per metric, sorted. *)
