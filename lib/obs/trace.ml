(* Chrome trace_event emission (see trace.mli).

   Events are rendered to JSON strings at record time and buffered under a
   mutex: rendering is cheap, and holding strings avoids keeping arbitrary
   caller data alive.  Worker domains record concurrently; the file is
   written once at [stop].  The trace_event format does not require events
   to be sorted, so the buffer is dumped in (reversed) arrival order. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type sink = { path : string; mutable events : string list; mutable n : int }

let mu = Mutex.create ()
let current : sink option ref = ref None

(* mirror of [current <> None], readable without the mutex on hot paths *)
let on = Atomic.make false

let is_on () = Atomic.get on

let start ~path =
  Mutex.lock mu;
  current := Some { path; events = []; n = 0 };
  Atomic.set on true;
  Mutex.unlock mu

let n_events () =
  Mutex.lock mu;
  let n = match !current with Some s -> s.n | None -> 0 in
  Mutex.unlock mu;
  n

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_arg = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%.6f" x
  | Bool b -> if b then "true" else "false"

let render_args = function
  | [] -> ""
  | args ->
      let fields =
        List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (render_arg v))
          args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let now_us () = Unix.gettimeofday () *. 1e6

(* [ts] and [dur] in microseconds; [dur] only for complete ("X") events. *)
let render ~ph ~cat ~args ~ts ?dur name =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.1f%s,\"pid\":%d,\"tid\":%d%s}"
    (json_escape name) (json_escape cat) ph ts
    (match dur with Some d -> Printf.sprintf ",\"dur\":%.1f" d | None -> "")
    (Unix.getpid ())
    ((Domain.self () :> int))
    (render_args args)

let record ev =
  Mutex.lock mu;
  (match !current with
  | Some s ->
      s.events <- ev :: s.events;
      s.n <- s.n + 1
  | None -> ());
  Mutex.unlock mu

let instant ?(cat = "grapple") ?(args = []) name =
  if is_on () then record (render ~ph:"i" ~cat ~args ~ts:(now_us ()) name)

let with_span ?(cat = "grapple") ?(args = []) name f =
  if not (is_on ()) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now_us () -. t0 in
        record (render ~ph:"X" ~cat ~args ~ts:t0 ~dur name))
      f
  end

let stop () =
  Mutex.lock mu;
  let s = !current in
  current := None;
  Atomic.set on false;
  Mutex.unlock mu;
  match s with
  | None -> ()
  | Some s ->
      let oc = open_out s.path in
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i ev ->
          if i > 0 then output_char oc ',';
          output_string oc ev)
        (List.rev s.events);
      output_string oc "],\"displayTimeUnit\":\"ms\"}";
      close_out oc
