(* Context-insensitive call graph over resolved JIR programs, plus Tarjan's
   strongly-connected-components algorithm.  The paper (§2.1) collapses each
   SCC of recursively-invoked methods and treats it context-insensitively;
   graph cloning is then driven by a reverse-topological order over the SCC
   condensation. *)

open Ast

type t = {
  program : program;
  (* method id -> callee method ids, in call-site order, deduplicated *)
  callees : (string, string list) Hashtbl.t;
  callers : (string, string list) Hashtbl.t;
  method_ids : string list;  (* all method ids, stable order *)
}

let rec calls_of_block acc (b : block) =
  List.fold_left calls_of_stmt acc b

and calls_of_stmt acc (s : stmt) =
  match s.kind with
  | Decl (_, _, Some (Rcall c)) | Assign (_, Rcall c) | Expr c ->
      (c.target_class, c.mname) :: acc
  | Decl (_, _, Some (Rnew (cls, _))) | Assign (_, Rnew (cls, _)) ->
      (* A constructor is modeled as the callee <init> when the class defines
         one; allocation itself is not a call. *)
      (cls, "<init>") :: acc
  | Decl _ | Assign _ | Store _ | Throw _ | Return _ -> acc
  | If (_, t, f) -> calls_of_block (calls_of_block acc t) f
  | While (_, b) -> calls_of_block acc b
  | Try (b, catches) ->
      List.fold_left
        (fun acc c -> calls_of_block acc c.handler)
        (calls_of_block acc b) catches

let dedup_keep_order l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

(* Build the call graph.  Calls to methods that do not exist in the program
   (library calls, e.g. the FSM event methods on built-in resource classes)
   are not edges: they have no body to analyze and are treated as events or
   no-ops by the analyses. *)
let build (p : program) : t =
  let callees = Hashtbl.create 64 in
  let callers = Hashtbl.create 64 in
  let methods =
    List.concat_map
      (fun c -> List.map (fun m -> meth_id m) c.methods)
      p.classes
  in
  (* Hashtable membership: the per-call [List.mem] scan made this loop
     quadratic in program size. *)
  let defined = Hashtbl.create 256 in
  List.iter (fun id -> Hashtbl.replace defined id ()) methods;
  let exists id = Hashtbl.mem defined id in
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          let raw = List.rev (calls_of_block [] m.body) in
          let resolved =
            raw
            |> List.map (fun (cls, name) -> qualified_name ~cls ~meth:name)
            |> List.filter exists
            |> dedup_keep_order
          in
          Hashtbl.replace callees (meth_id m) resolved;
          List.iter
            (fun callee ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt callers callee)
              in
              Hashtbl.replace callers callee (meth_id m :: cur))
            resolved)
        c.methods)
    p.classes;
  { program = p; callees; callers; method_ids = methods }

let callees t id = Option.value ~default:[] (Hashtbl.find_opt t.callees id)
let callers t id =
  dedup_keep_order (Option.value ~default:[] (Hashtbl.find_opt t.callers id))

(* ------------------------------------------------------------------ *)
(* Tarjan SCC over the call graph.                                     *)
(* ------------------------------------------------------------------ *)

type scc = {
  components : string list array;  (* each component: member method ids *)
  component_of : (string, int) Hashtbl.t;
}

let tarjan (t : t) : scc =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    t.method_ids;
  (* Tarjan emits components in reverse topological order of the
     condensation (callees before callers); keep that order. *)
  let components = Array.of_list (List.rev !comps) in
  let component_of = Hashtbl.create 64 in
  Array.iteri
    (fun i members -> List.iter (fun m -> Hashtbl.replace component_of m i) members)
    components;
  { components; component_of }

(* SCC components in reverse-topological order of the condensation: every
   component appears after all components it calls into (callees first).
   This is the order bottom-up summary computation and inlining proceed in
   (§4.1). *)
let sccs_reverse_topological (t : t) : string list list =
  let scc = tarjan t in
  (* Components as emitted by [tarjan] are ordered callers-last; verify by
     orienting edges and sorting the condensation. *)
  let n = Array.length scc.components in
  let deps = Array.make n [] in
  Array.iteri
    (fun i members ->
      List.iter
        (fun m ->
          List.iter
            (fun callee ->
              let j = Hashtbl.find scc.component_of callee in
              if i <> j then deps.(i) <- j :: deps.(i))
            (callees t m))
        members)
    scc.components;
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter visit deps.(i);
      order := i :: !order
    end
  in
  for i = 0 to n - 1 do visit i done;
  (* [order] now lists components with callees first. *)
  List.map (fun i -> scc.components.(i)) (List.rev !order)

(* Methods in reverse-topological order of the SCC condensation: every callee
   (outside the method's own SCC) appears before its callers. *)
let reverse_topological (t : t) : string list =
  List.concat (sccs_reverse_topological t)

let is_recursive (t : t) (scc : scc) id =
  match Hashtbl.find_opt scc.component_of id with
  | None -> false
  | Some i ->
      (match scc.components.(i) with
      | [ single ] -> List.mem single (callees t single)
      | _ :: _ :: _ -> true
      | [] -> false)
