(* Abstract syntax of JIR, the Java-like intermediate representation that
   plays the role Soot-generated Jimple plays in the paper.  The subset keeps
   exactly the constructs the Grapple analyses consume: allocations,
   assignments, field loads/stores, calls, integer branch conditions,
   bounded loops, and exception flow. *)

type typ =
  | Tint
  | Tbool
  | Tobj of string
  | Tvoid

type var = string

type field = string

(* Source position carried into bug reports. *)
type pos = { file : string; line : int }

let no_pos = { file = "<builtin>"; line = 0 }

type binop = Add | Sub | Mul

type cmpop = Le | Lt | Ge | Gt | Eq | Ne

type expr =
  | Const of int
  | Var of var
  | Binop of binop * expr * expr

type cond =
  | Bconst of bool
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

(* A call site.  [recv = Some v] is an instance call [v.m(...)]; otherwise a
   static call resolved by [target_class]. *)
type call = {
  recv : var option;
  target_class : string;
  mname : string;
  args : expr list;
}

type rhs =
  | Rnew of string * expr list      (* new C(args) *)
  | Rload of var * field            (* y.f *)
  | Rcall of call                   (* v = m(...) *)
  | Rexpr of expr
  | Rnull

type stmt = { sid : int; at : pos; kind : stmt_kind }

and stmt_kind =
  | Decl of typ * var * rhs option
  | Assign of var * rhs
  | Store of var * field * var      (* x.f = y *)
  | If of cond * block * block
  | While of cond * block
  | Try of block * catch list
  | Throw of string                 (* throw new E() *)
  | Return of expr option
  | Expr of call                    (* call for effect: the FSM events *)

and catch = { exn_class : string; exn_var : var; handler : block }

and block = stmt list

type meth = {
  mclass : string;
  mname : string;
  params : (typ * var) list;
  ret : typ;
  throws : string list;
  body : block;
}

type cls = {
  cname : string;
  fields : (typ * field) list;
  methods : meth list;
}

type program = {
  classes : cls list;
  entries : (string * string) list;  (* (class, method) analysis roots *)
}

let qualified_name ~cls ~meth = cls ^ "." ^ meth

let meth_id (m : meth) = qualified_name ~cls:m.mclass ~meth:m.mname

(* Fresh statement ids: the frontend numbers statements as it builds them so
   that transformed copies (loop unrolling, inlining) stay distinguishable. *)
let sid_counter = ref 0

let fresh_sid () =
  incr sid_counter;
  !sid_counter

let mk ?(at = no_pos) kind = { sid = fresh_sid (); at; kind }

let find_class program name =
  List.find_opt (fun c -> c.cname = name) program.classes

let find_method program ~cls ~meth =
  match find_class program cls with
  | None -> None
  | Some c -> List.find_opt (fun m -> m.mname = meth) c.methods

let all_methods program =
  List.concat_map (fun c -> c.methods) program.classes

(* Hashtable-backed lookup index.  [find_class]/[find_method] scan lists and
   sit on hot paths (resolver target checks, call binding, throws lookup);
   whole-program passes that touch every call site build one of these once.
   First binding wins, matching [List.find_opt] on duplicate names. *)
type index = {
  idx_classes : (string, cls) Hashtbl.t;
  idx_methods : (string * string, meth) Hashtbl.t;
}

let index (p : program) : index =
  let idx_classes = Hashtbl.create 64 in
  let idx_methods = Hashtbl.create 256 in
  List.iter
    (fun c ->
      if not (Hashtbl.mem idx_classes c.cname) then begin
        Hashtbl.add idx_classes c.cname c;
        List.iter
          (fun m ->
            if not (Hashtbl.mem idx_methods (c.cname, m.mname)) then
              Hashtbl.add idx_methods (c.cname, m.mname) m)
          c.methods
      end)
    p.classes;
  { idx_classes; idx_methods }

let find_class_idx (idx : index) name = Hashtbl.find_opt idx.idx_classes name

let find_method_idx (idx : index) ~cls ~meth =
  Hashtbl.find_opt idx.idx_methods (cls, meth)

(* Structural size of a program in statements, used by workload reports. *)
let rec block_size (b : block) =
  List.fold_left (fun acc s -> acc + stmt_size s) 0 b

and stmt_size (s : stmt) =
  match s.kind with
  | Decl _ | Assign _ | Store _ | Throw _ | Return _ | Expr _ -> 1
  | If (_, t, f) -> 1 + block_size t + block_size f
  | While (_, b) -> 1 + block_size b
  | Try (b, catches) ->
      1 + block_size b
      + List.fold_left (fun acc c -> acc + block_size c.handler) 0 catches

let program_size (p : program) =
  List.fold_left
    (fun acc c ->
      List.fold_left (fun acc m -> acc + 1 + block_size m.body) acc c.methods)
    0 p.classes

(* Variables mentioned by an expression, in first-occurrence order. *)
let rec expr_vars = function
  | Const _ -> []
  | Var v -> [ v ]
  | Binop (_, a, b) -> expr_vars a @ expr_vars b

let rec cond_vars = function
  | Bconst _ -> []
  | Cmp (_, a, b) -> expr_vars a @ expr_vars b
  | And (a, b) | Or (a, b) -> cond_vars a @ cond_vars b
  | Not c -> cond_vars c
