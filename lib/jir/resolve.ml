(* Post-parse resolution: decide for each call whether the receiver names a
   class (static call) or a variable (instance call, receiver class taken
   from the variable's declared type), and check that every call target
   exists.  JIR has no inheritance, so the declared class is the dispatch
   target. *)

open Ast

type error = { at : pos; msg : string }

let err at fmt = Format.kasprintf (fun msg -> { at; msg }) fmt

type env = {
  classes : (string, cls) Hashtbl.t;
  (* class name -> method-name set; [check_target] runs once per call site,
     so the per-call [List.exists] scan over the class's methods was
     quadratic on call-heavy classes *)
  method_names : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable vars : (var * typ) list;  (* innermost scope first *)
  mutable errors : error list;
}

let lookup_var env v = List.assoc_opt v env.vars

let class_of_var env v =
  match lookup_var env v with
  | Some (Tobj c) -> Some c
  | _ -> None

let record env e = env.errors <- e :: env.errors

let resolve_call env at (c : call) : call =
  match c.recv with
  | None -> c
  | Some r ->
      if Hashtbl.mem env.classes r && lookup_var env r = None then
        { c with recv = None; target_class = r }
      else begin
        let target_class =
          match class_of_var env r with
          | Some cls -> cls
          | None ->
              record env
                (err at "call receiver %s is neither a class nor an object" r);
              c.target_class
        in
        { c with target_class }
      end

(* Classes not defined in the program are library classes (e.g. Socket,
   FileWriter): calls into them are analysis events or no-ops, so only calls
   to *defined* classes are checked for a matching method. *)
let check_target env at (c : call) =
  if c.target_class <> "" then
    match Hashtbl.find_opt env.method_names c.target_class with
    | None -> ()
    | Some names ->
        if not (Hashtbl.mem names c.mname) then
          record env
            (err at "class %s has no method %s" c.target_class c.mname)

let resolve_rhs env at = function
  | Rcall c ->
      let c = resolve_call env at c in
      check_target env at c;
      Rcall c
  | Rnew _ as r -> r
  | (Rload _ | Rexpr _ | Rnull) as r -> r

let rec resolve_block env (b : block) : block =
  let saved = env.vars in
  let b' = List.map (resolve_stmt env) b in
  env.vars <- saved;
  b'

and resolve_stmt env (s : stmt) : stmt =
  let kind =
    match s.kind with
    | Decl (t, v, r) ->
        let r = Option.map (resolve_rhs env s.at) r in
        env.vars <- (v, t) :: env.vars;
        Decl (t, v, r)
    | Assign (v, r) -> Assign (v, resolve_rhs env s.at r)
    | Store (x, f, y) ->
        if lookup_var env x = None then
          record env (err s.at "store into undeclared variable %s" x);
        if lookup_var env y = None then
          record env (err s.at "store of undeclared variable %s" y);
        Store (x, f, y)
    | If (c, t, f) -> If (c, resolve_block env t, resolve_block env f)
    | While (c, b) -> While (c, resolve_block env b)
    | Try (b, catches) ->
        let b = resolve_block env b in
        let catches =
          List.map
            (fun cc ->
              let saved = env.vars in
              env.vars <- (cc.exn_var, Tobj cc.exn_class) :: env.vars;
              let handler = List.map (resolve_stmt env) cc.handler in
              env.vars <- saved;
              { cc with handler })
            catches
        in
        Try (b, catches)
    | Throw _ as k -> k
    | Return _ as k -> k
    | Expr c ->
        let c = resolve_call env s.at c in
        check_target env s.at c;
        Expr c
  in
  { s with kind }

let resolve_method env (m : meth) : meth =
  env.vars <- List.map (fun (t, v) -> (v, t)) m.params;
  let body = resolve_block env m.body in
  env.vars <- [];
  { m with body }

(* Resolve a parsed program.  Returns the resolved program and any semantic
   errors found (empty list means the program is well-formed). *)
let run (p : program) : program * error list =
  let classes = Hashtbl.create 64 in
  let method_names = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.replace classes c.cname c;
      let names = Hashtbl.create (List.length c.methods) in
      List.iter (fun m -> Hashtbl.replace names m.mname ()) c.methods;
      Hashtbl.replace method_names c.cname names)
    p.classes;
  let env = { classes; method_names; vars = []; errors = [] } in
  let classes' =
    List.map
      (fun c -> { c with methods = List.map (resolve_method env) c.methods })
      p.classes
  in
  let idx = index { p with classes = classes' } in
  List.iter
    (fun (c, m) ->
      match find_method_idx idx ~cls:c ~meth:m with
      | Some _ -> ()
      | None -> record env (err no_pos "entry %s.%s does not exist" c m))
    p.entries;
  ({ p with classes = classes' }, List.rev env.errors)

exception Resolve_error of error list

(* Convenience: parse + resolve, raising on any error. *)
let parse_exn ?file src =
  let p, errs = run (Parser.parse ?file src) in
  if errs <> [] then raise (Resolve_error errs);
  p

let error_to_string e = Printf.sprintf "%s:%d: %s" e.at.file e.at.line e.msg
