(* Generation of the program graph for the path-sensitive dataflow
   (typestate) analysis — the second phase of the paper's workflow (§2.2).

   For every tracked allocation the builder emits a control-flow graph over
   "points".  A point is (clone instance, CFET node, segment): a node with k
   call sites that dive into relevant callee clones has segments 0..k (the
   statement runs before/between/after the dives) plus a node-exit point
   k+1.  Edges:

     seg i --Step(effect of seg i)--> callee-root (dive), returning at
                                      seg i+1 via the callee's leaves
     seg k --Step(effect of seg k)--> node exit
     node exit --Step(id)--> children (branch) / caller continuation (leaf)

   The effect of a segment is the composition of the FSM transition
   functions of its events; an event is a library call whose receiver
   aliases the tracked object according to the phase-1 alias results, and
   the alias path's encoding is attached to the edge as an [Aux] fragment so
   the engine only counts the event on paths where the aliasing is feasible.
   Clones containing no alias of the object are not entered: calls into them
   are no-ops inside their segment (a deliberate abstraction documented in
   DESIGN.md).

   The engine closes  Track ::= Track Step  over these seeds: a transitive
   Track edge (source(o) -> point, f) says o reaches the point with FSM
   state f(initial) along some feasible path. *)

module Encoding = Pathenc.Encoding
module Icfet = Symexec.Icfet
module Cfet = Symexec.Cfet
module Transfn = Cfl.Transfn
module Dg = Cfl.Dataflow_grammar

type point = { inst : int; node : int; seg : int }

type tracked = {
  obj_vertex : int;   (* alias-graph object vertex *)
  obj_idx : int;      (* dense index among tracked objects *)
  alloc_inst : int;
  cls : string;
  at : Jir.Ast.pos;
  source_vertex : int;  (* dataflow vertex the Track path roots at *)
}

type exit_kind = Exit_normal | Exit_exceptional of string | Exit_escaped

type seed = { src : int; dst : int; label : Dg.t; enc : Encoding.t }

type t = {
  registry : Transfn.registry;
  fsm : Fsm.t;
  mutable n_vertices : int;
  point_index : (int * int * int * int, int) Hashtbl.t;
  mutable point_info : (int * point) option array;  (* vertex -> owner/point *)
  mutable seeds : seed list;
  mutable n_seeds : int;
  mutable tracked : tracked list;
  exit_points : (int, exit_kind) Hashtbl.t;
  event_sites : (int, Jir.Ast.stmt) Hashtbl.t;
      (* edge-destination vertex -> last event statement flowing into it *)
}

let vertex (g : t) ~obj_idx (p : point) : int =
  let key = (obj_idx, p.inst, p.node, p.seg) in
  match Hashtbl.find_opt g.point_index key with
  | Some id -> id
  | None ->
      let id = g.n_vertices in
      g.n_vertices <- id + 1;
      if id >= Array.length g.point_info then begin
        let bigger = Array.make (max 1024 (2 * Array.length g.point_info)) None in
        Array.blit g.point_info 0 bigger 0 (Array.length g.point_info);
        g.point_info <- bigger
      end;
      g.point_info.(id) <- Some (obj_idx, p);
      Hashtbl.replace g.point_index key id;
      id

let source_vertex (g : t) : int =
  let id = g.n_vertices in
  g.n_vertices <- id + 1;
  if id >= Array.length g.point_info then begin
    let bigger = Array.make (max 1024 (2 * Array.length g.point_info)) None in
    Array.blit g.point_info 0 bigger 0 (Array.length g.point_info);
    g.point_info <- bigger
  end;
  g.point_info.(id) <- None;
  id

let add_seed (g : t) src dst label enc =
  g.seeds <- { src; dst; label; enc } :: g.seeds;
  g.n_seeds <- g.n_seeds + 1

(* ------------------------------------------------------------------ *)
(* Helpers over one object's alias results.                            *)
(* ------------------------------------------------------------------ *)

(* (inst, var, node, version) -> shortest feasible alias encoding.  Keeping
   one representative per occurrence bounds the dataflow graph; see
   DESIGN.md. *)
type alias_map = (int * string * int * int, Encoding.t) Hashtbl.t

(* (subject variable, event) fired by a statement, or [None].  The event
   resolution itself — name matching vs declared patterns and guards —
   lives in {!Fsm.call_event}/{!Fsm.store_event}/{!Fsm.return_event} so
   that the summary pre-analysis and the escape pre-filter agree with the
   graph builder statement by statement. *)
let stmt_event (fsm : Fsm.t) (icfet : Icfet.t) ~(meth : Jir.Ast.meth)
    (s : Jir.Ast.stmt) : (string * string) option =
  let of_call (c : Jir.Ast.call) =
    let defined =
      Icfet.meth_idx icfet
        (Jir.Ast.qualified_name ~cls:c.Jir.Ast.target_class
           ~meth:c.Jir.Ast.mname)
      <> None
    in
    if defined then None
    else
      match (c.Jir.Ast.recv, Fsm.call_event fsm ~meth c) with
      | Some r, Some ev -> Some (r, ev)
      | _ -> None
  in
  match s.Jir.Ast.kind with
  | Jir.Ast.Expr c
  | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
  | Jir.Ast.Assign (_, Jir.Ast.Rcall c) ->
      of_call c
  | Jir.Ast.Store (_, _, y) -> (
      match Fsm.store_event fsm ~meth ~src:y with
      | Some ev -> Some (y, ev)
      | None -> None)
  | Jir.Ast.Return (Some (Jir.Ast.Var v)) -> (
      match Fsm.return_event fsm ~meth v with
      | Some ev -> Some (v, ev)
      | None -> None)
  | _ -> None

(* Effect of one segment on the tracked object: composed transition function
   id, the Aux fragments of the alias paths consulted, and the last event
   statement (for reporting). *)
let segment_effect (g : t) (icfet : Icfet.t) ~(meth_ast : Jir.Ast.meth)
    (aliases : alias_map) (ver : Varver.t) ~inst ~node
    (stmts : Jir.Ast.stmt list) :
    int * Encoding.element list * Jir.Ast.stmt option =
  let effect = ref Transfn.identity_id in
  let auxes = ref [] in
  let last_event = ref None in
  List.iter
    (fun s ->
      match stmt_event g.fsm icfet ~meth:meth_ast s with
      | None -> ()
      | Some (recv, event) -> (
          let version = Varver.use ver ~sid:s.Jir.Ast.sid ~var:recv in
          match Hashtbl.find_opt aliases (inst, recv, node, version) with
          | None -> ()
          | Some alias_enc ->
              let vec = Fsm.event_vector g.fsm event in
              let fid = Transfn.intern g.registry vec in
              effect := Transfn.compose g.registry !effect fid;
              auxes := Encoding.Aux alias_enc :: !auxes;
              last_event := Some s))
    stmts;
  (!effect, List.rev !auxes, !last_event)

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)
(* ------------------------------------------------------------------ *)

type config = { max_points_per_object : int }

let default_config = { max_points_per_object = 500_000 }

exception Too_large of string

(* Information the builder needs about phase-1 results: for an object
   vertex, the var vertices it flows to, with encodings. *)
type flows = (int, (int * Encoding.t) list) Hashtbl.t

let build ?(config = default_config) (icfet : Icfet.t) (clones : Clone_tree.t)
    (ag : Alias_graph.t) (flows : flows) (fsm : Fsm.t) : t =
  let registry = Transfn.create ~n_states:(Fsm.n_states fsm) in
  Dg.set_registry registry;
  let g =
    { registry; fsm; n_vertices = 0;
      point_index = Hashtbl.create 4096; point_info = [||]; seeds = [];
      n_seeds = 0; tracked = []; exit_points = Hashtbl.create 64;
      event_sites = Hashtbl.create 256 }
  in
  (* reverse call-site map: callee instance -> entering (caller, call id) *)
  let entries_rev : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, call_id) callee ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt entries_rev callee) in
      Hashtbl.replace entries_rev callee ((caller, call_id) :: cur))
    clones.Clone_tree.by_site;
  let tracked_objects =
    List.filter
      (fun ov ->
        match Alias_graph.info ag ov with
        | Alias_graph.Obj_vertex { cls; _ } -> Fsm.is_tracked fsm cls
        | Alias_graph.Var_vertex _ -> false)
      (Alias_graph.objects ag)
  in
  List.iteri
    (fun obj_idx obj_vertex ->
      let alloc_inst, alloc_node, cls, at =
        match Alias_graph.info ag obj_vertex with
        | Alias_graph.Obj_vertex { inst; node; cls; at; _ } ->
            (inst, node, cls, at)
        | Alias_graph.Var_vertex _ -> assert false
      in
      (* 1. alias occurrences of this object *)
      let aliases : alias_map = Hashtbl.create 64 in
      let alias_insts = ref [ alloc_inst ] in
      List.iter
        (fun (var_vertex, enc) ->
          match Alias_graph.info ag var_vertex with
          | Alias_graph.Var_vertex { inst; var; node; version; _ } ->
              alias_insts := inst :: !alias_insts;
              let key = (inst, var, node, version) in
              let better =
                match Hashtbl.find_opt aliases key with
                | None -> true
                | Some old -> Encoding.n_elements enc < Encoding.n_elements old
              in
              if better then Hashtbl.replace aliases key enc
          | Alias_graph.Obj_vertex _ -> ())
        (Option.value ~default:[] (Hashtbl.find_opt flows obj_vertex));
      (* 2. relevant instances: alias instances closed under callers *)
      let relevant : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let rec mark inst =
        if not (Hashtbl.mem relevant inst) then begin
          Hashtbl.replace relevant inst ();
          List.iter
            (fun (caller, _) -> mark caller)
            (Option.value ~default:[] (Hashtbl.find_opt entries_rev inst))
        end
      in
      List.iter mark !alias_insts;
      (* 3. per-node dive sites and segments, cached for return edges *)
      let dives_of : (int * int, (int * int * int) list) Hashtbl.t =
        Hashtbl.create 256
      in
      (* (inst, node) -> (call_id, callee_inst, sid) list in stmt order *)
      let compute_dives inst (n : Cfet.node) meth =
        List.filter_map
          (fun (ci : Cfet.call_info) ->
            match
              Icfet.call_id_of_site icfet ~meth ~node:n.Cfet.id
                ~sid:ci.Cfet.call_stmt.Jir.Ast.sid
            with
            | None -> None
            | Some call_id -> (
                match
                  Clone_tree.callee_instance clones ~caller:inst ~call_id
                with
                | Some j when Hashtbl.mem relevant j ->
                    Some (call_id, j, ci.Cfet.call_stmt.Jir.Ast.sid)
                | _ -> None))
          n.Cfet.calls
      in
      let segments dives (n : Cfet.node) =
        let k = List.length dives in
        let segs = Array.make (k + 1) [] in
        let remaining = ref (List.map (fun (_, _, sid) -> sid) dives) in
        let seg = ref 0 in
        List.iter
          (fun (s : Jir.Ast.stmt) ->
            segs.(!seg) <- s :: segs.(!seg);
            match !remaining with
            | sid :: rest when sid = s.Jir.Ast.sid ->
                remaining := rest;
                incr seg
            | _ -> ())
          n.Cfet.stmts;
        Array.map List.rev segs
      in
      Hashtbl.iter
        (fun inst () ->
          let meth = (Clone_tree.instance clones inst).Clone_tree.meth in
          let cfet = Icfet.cfet icfet meth in
          Hashtbl.iter
            (fun node_id (n : Cfet.node) ->
              Hashtbl.replace dives_of (inst, node_id)
                (compute_dives inst n meth))
            cfet.Cfet.nodes)
        relevant;
      (* 4. emit points and hop edges *)
      let entry_set = clones.Clone_tree.entry_instances in
      Hashtbl.iter
        (fun inst () ->
          let meth = (Clone_tree.instance clones inst).Clone_tree.meth in
          let cfet = Icfet.cfet icfet meth in
          Hashtbl.iter
            (fun node_id (n : Cfet.node) ->
              let dives = Hashtbl.find dives_of (inst, node_id) in
              let segs = segments dives n in
              let k = List.length dives in
              if g.n_vertices > config.max_points_per_object * (obj_idx + 1)
              then raise (Too_large "dataflow graph too large");
              (* segment hops *)
              let node_vv = Varver.analyze n.Cfet.stmts in
              for i = 0 to k do
                let src = vertex g ~obj_idx { inst; node = node_id; seg = i } in
                let effect, auxes, event_stmt =
                  segment_effect g icfet ~meth_ast:cfet.Cfet.meth aliases
                    node_vv ~inst ~node:node_id segs.(i)
                in
                let base_enc =
                  auxes
                  @ [ Encoding.Interval
                        { meth; first = node_id; last = node_id } ]
                in
                let dst, enc =
                  if i < k then begin
                    let call_id, callee_inst, _ = List.nth dives i in
                    ( vertex g ~obj_idx { inst = callee_inst; node = 0; seg = 0 },
                      base_enc @ [ Encoding.Call call_id ] )
                  end
                  else
                    ( vertex g ~obj_idx { inst; node = node_id; seg = k + 1 },
                      base_enc )
                in
                add_seed g src dst (Dg.Step effect) enc;
                (match event_stmt with
                | Some s ->
                    if not (Hashtbl.mem g.event_sites dst) then
                      Hashtbl.replace g.event_sites dst s
                | None -> ())
              done;
              (* node-exit hops *)
              let exit_v = vertex g ~obj_idx { inst; node = node_id; seg = k + 1 } in
              match (n.Cfet.cond, n.Cfet.exit) with
              | Some _, _ ->
                  let t_child = Option.get n.Cfet.t_child in
                  let f_child = Option.get n.Cfet.f_child in
                  List.iter
                    (fun child ->
                      let dst = vertex g ~obj_idx { inst; node = child; seg = 0 } in
                      add_seed g exit_v dst (Dg.Step Transfn.identity_id)
                        [ Encoding.Interval
                            { meth; first = node_id; last = child } ])
                    [ t_child; f_child ]
              | None, Some leaf_exit -> (
                  let entering =
                    List.filter
                      (fun (caller, _) -> Hashtbl.mem relevant caller)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt entries_rev inst))
                  in
                  let is_entry = List.mem inst entry_set in
                  if is_entry || entering = [] then
                    Hashtbl.replace g.exit_points exit_v
                      (match leaf_exit with
                      | Cfet.Normal _ -> Exit_normal
                      | Cfet.Exceptional e -> Exit_exceptional e)
                  else
                    List.iter
                      (fun (caller, call_id) ->
                        let ce = Icfet.call_edge icfet call_id in
                        let caller_node = ce.Icfet.caller_node in
                        let caller_dives =
                          Option.value ~default:[]
                            (Hashtbl.find_opt dives_of (caller, caller_node))
                        in
                        let rec pos i = function
                          | [] -> None
                          | (cid, _, _) :: rest ->
                              if cid = call_id then Some i else pos (i + 1) rest
                        in
                        match (leaf_exit, pos 0 caller_dives) with
                        | Cfet.Normal _, Some p ->
                            let dst =
                              vertex g ~obj_idx
                                { inst = caller; node = caller_node;
                                  seg = p + 1 }
                            in
                            add_seed g exit_v dst (Dg.Step Transfn.identity_id)
                              [ Encoding.Ret call_id;
                                Encoding.Interval
                                  { meth = ce.Icfet.caller_meth;
                                    first = caller_node; last = caller_node } ]
                        | Cfet.Exceptional _, _ ->
                            (* transfer to the caller's exception branch: the
                               false sibling of the node containing the call,
                               which exists exactly when the call heads a
                               may-throw divergence *)
                            let caller_cfet =
                              Icfet.cfet icfet ce.Icfet.caller_meth
                            in
                            let sibling = caller_node - 1 in
                            if
                              ce.Icfet.diverges
                              && caller_node > 0
                              && Hashtbl.mem caller_cfet.Cfet.nodes sibling
                            then begin
                              let dst =
                                vertex g ~obj_idx
                                  { inst = caller; node = sibling; seg = 0 }
                              in
                              add_seed g exit_v dst
                                (Dg.Step Transfn.identity_id)
                                [ Encoding.Ret call_id;
                                  Encoding.Interval
                                    { meth = ce.Icfet.caller_meth;
                                      first = sibling; last = sibling } ]
                            end
                            else
                              Hashtbl.replace g.exit_points exit_v
                                Exit_escaped
                        | Cfet.Normal _, None -> ())
                      entering)
              | None, None -> assert false)
            cfet.Cfet.nodes)
        relevant;
      (* 5. the Track seed at the allocation *)
      let src = source_vertex g in
      let alloc_meth = (Clone_tree.instance clones alloc_inst).Clone_tree.meth in
      let alloc_cfet = Icfet.cfet icfet alloc_meth in
      let alloc_sid =
        match Alias_graph.info ag obj_vertex with
        | Alias_graph.Obj_vertex { sid; _ } -> sid
        | Alias_graph.Var_vertex _ -> assert false
      in
      let dives =
        Option.value ~default:[]
          (Hashtbl.find_opt dives_of (alloc_inst, alloc_node))
      in
      let alloc_seg =
        (* segment containing the allocation statement *)
        let node = Cfet.node alloc_cfet alloc_node in
        let seg = ref 0 in
        let found = ref 0 in
        let remaining = ref (List.map (fun (_, _, sid) -> sid) dives) in
        List.iter
          (fun (s : Jir.Ast.stmt) ->
            if s.Jir.Ast.sid = alloc_sid then found := !seg;
            match !remaining with
            | sid :: rest when sid = s.Jir.Ast.sid ->
                remaining := rest;
                incr seg
            | _ -> ())
          node.Cfet.stmts;
        !found
      in
      let dst = vertex g ~obj_idx { inst = alloc_inst; node = alloc_node; seg = alloc_seg } in
      (* anchor the track at the method entry so the branch conditions that
         guard the allocation constrain the rest of the object's path *)
      add_seed g src dst (Dg.Track Transfn.identity_id)
        [ Encoding.Interval { meth = alloc_meth; first = 0; last = alloc_node } ];
      g.tracked <-
        { obj_vertex; obj_idx; alloc_inst; cls; at; source_vertex = src }
        :: g.tracked)
    tracked_objects;
  g.tracked <- List.rev g.tracked;
  g.seeds <- List.rev g.seeds;
  g

let seeds (g : t) = g.seeds
let tracked (g : t) = g.tracked
let n_vertices (g : t) = g.n_vertices
let n_seeds (g : t) = g.n_seeds
let exit_kind (g : t) v = Hashtbl.find_opt g.exit_points v
let event_site (g : t) v = Hashtbl.find_opt g.event_sites v
let point_of (g : t) v = g.point_info.(v)
let registry (g : t) = g.registry
