(* Generation of the program graph for the pointer/alias analysis
   (paper §4.1, Figure 5b).

   Vertices are per-CFET-node variable instances and per-allocation-site
   objects, replicated per method clone.  Edges come from assignments (rules
   of Figure 4a), from "artificial" assignments threading a variable from
   the CFET node of its previous occurrence to the node of its next use, and
   from parameter-passing / value-return connections between clones.  Every
   edge carries its path encoding: a one-interval sequence for
   intra-method edges, a single call (return) edge id for parameter
   (value-return) edges.

   The construction is template-based: edges are computed once per method
   against CFET node ids, then stamped once per clone instance, which is
   exactly the bottom-up inlining of §4.1 without materializing intermediate
   graphs. *)

module Encoding = Pathenc.Encoding
module Symbol = Smt.Symbol
module Icfet = Symexec.Icfet
module Cfet = Symexec.Cfet

(* Implicit receiver parameter: instance calls pass the receiver as [this],
   matching how Java frontends (Soot) expose it. *)
let this_var = "this"

(* The pseudo-class of [null] pseudo-allocations, trackable by FSM
   specifications (used by the null-dereference checker). *)
let null_class = "<null>"

type vref =
  | Vvar of string * int * int  (* variable, CFET node, version (Varver) *)
  | Vobj of int * int           (* allocation statement at CFET node *)

type tedge = {
  tsrc : vref;
  tdst : vref;
  tlabel : Cfl.Pointer_grammar.t;
  first : int;  (* encoding interval [first, last] in this method *)
  last : int;
}

type boundary =
  | Param of {
      arg_var : string;
      arg_version : int;
      caller_node : int;
      call_id : int;
      formal : string;
    }
  | Ret_val of {
      ret_var : string;
      ret_version : int;
      leaf : int;
      call_id : int;
      lhs_var : string;
      lhs_version : int;
      caller_node : int;
    }

type alloc_site = { sid : int; cls : string; at : Jir.Ast.pos; node : int }

type mtemplate = {
  medges : tedge list;
  bounds : boundary list;
  allocs : alloc_site list;
}

type vertex_info =
  | Var_vertex of { inst : int; var : string; node : int; version : int; meth : int }
  | Obj_vertex of {
      inst : int;
      sid : int;
      cls : string;
      node : int;
      meth : int;
      at : Jir.Ast.pos;
    }

type edge = { src : int; dst : int; label : Cfl.Pointer_grammar.t; enc : Encoding.t }

type t = {
  icfet : Icfet.t;
  clones : Clone_tree.t;
  mutable n_vertices : int;
  mutable info : vertex_info array;
  index : (int * int * int * int, int) Hashtbl.t;
      (* (inst, tag, node, name/sid) -> vertex id; tag 0 = var, 1 = obj *)
  mutable edges : edge list;
  mutable n_edges : int;
  mutable objects : int list;  (* object vertex ids *)
}

let field_id f = Symbol.intern ("field:" ^ f)

(* ------------------------------------------------------------------ *)
(* Per-method templates.                                               *)
(* ------------------------------------------------------------------ *)

(* The receiver whose object flows into the callee as [this]: explicit for
   instance calls, the allocation's target variable for constructors. *)
let receiver_of_call_stmt (s : Jir.Ast.stmt) : string option =
  match s.Jir.Ast.kind with
  | Jir.Ast.Expr c -> c.Jir.Ast.recv
  | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
  | Jir.Ast.Assign (_, Jir.Ast.Rcall c) ->
      c.Jir.Ast.recv
  | Jir.Ast.Decl (_, v, Some (Jir.Ast.Rnew _)) | Jir.Ast.Assign (v, Jir.Ast.Rnew _)
    ->
      Some v
  | _ -> None

let lhs_of_call_stmt (s : Jir.Ast.stmt) : string option =
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, v, Some (Jir.Ast.Rcall _))
  | Jir.Ast.Assign (v, Jir.Ast.Rcall _) ->
      Some v
  | _ -> None

let args_of_call_stmt (s : Jir.Ast.stmt) : Jir.Ast.expr list =
  match s.Jir.Ast.kind with
  | Jir.Ast.Expr c
  | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
  | Jir.Ast.Assign (_, Jir.Ast.Rcall c) ->
      c.Jir.Ast.args
  | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rnew (_, args)))
  | Jir.Ast.Assign (_, Jir.Ast.Rnew (_, args)) ->
      args
  | _ -> []

let build_template ~track_null ~exclude (icfet : Icfet.t) (meth_idx : int) :
    mtemplate =
  let cfet = Icfet.cfet icfet meth_idx in
  let formals =
    this_var :: List.map snd cfet.Cfet.meth.Jir.Ast.params
  in
  let medges = ref [] in
  let bounds = ref [] in
  let allocs = ref [] in
  let emit tsrc tdst tlabel first last =
    medges := { tsrc; tdst; tlabel; first; last } :: !medges
  in
  (* per-node versioning (kills are exact along a tree path) *)
  let vv : (int, Varver.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun node_id (n : Cfet.node) ->
      Hashtbl.replace vv node_id (Varver.analyze n.Cfet.stmts))
    cfet.Cfet.nodes;
  let node_occurs node_id var =
    (node_id = 0 && List.mem var formals)
    || Varver.occurs (Hashtbl.find vv node_id) ~var
  in
  let node_last node_id var = Varver.last (Hashtbl.find vv node_id) ~var in
  (* statement-level edges, per node *)
  Hashtbl.iter
    (fun node_id (n : Cfet.node) ->
      let ver = Hashtbl.find vv node_id in
      let use var ~sid = Vvar (var, node_id, Varver.use ver ~sid ~var) in
      let def var ~sid = Vvar (var, node_id, Varver.def ver ~sid ~var) in
      List.iter
        (fun (s : Jir.Ast.stmt) ->
          let sid = s.Jir.Ast.sid in
          match s.Jir.Ast.kind with
          | Jir.Ast.Decl (_, v, Some r) | Jir.Ast.Assign (v, r) -> (
              match r with
              | Jir.Ast.Rnew (cls, _) ->
                  (* the def version must be registered even for excluded
                     allocations so the variable's version numbering (and
                     every other edge) is unchanged by the pre-filter *)
                  let dst = def v ~sid in
                  if not (exclude sid) then begin
                    allocs :=
                      { sid; cls; at = s.Jir.Ast.at; node = node_id } :: !allocs;
                    emit (Vobj (sid, node_id)) dst
                      Cfl.Pointer_grammar.New node_id node_id
                  end
              | Jir.Ast.Rexpr (Jir.Ast.Var y) ->
                  emit (use y ~sid) (def v ~sid) Cfl.Pointer_grammar.Assign
                    node_id node_id
              | Jir.Ast.Rload (y, f) ->
                  emit (use y ~sid) (def v ~sid)
                    (Cfl.Pointer_grammar.Load (field_id f))
                    node_id node_id
              | Jir.Ast.Rnull when track_null ->
                  (* null is a trackable pseudo-allocation: the null-deref
                     checker follows its flow like any other object.  Only
                     materialized when a null-tracking property is active:
                     the extra sources enlarge the alias closure for every
                     other checker otherwise. *)
                  allocs :=
                    { sid; cls = null_class; at = s.Jir.Ast.at; node = node_id }
                    :: !allocs;
                  emit (Vobj (sid, node_id)) (def v ~sid)
                    Cfl.Pointer_grammar.New node_id node_id
              | Jir.Ast.Rcall _ | Jir.Ast.Rexpr _ | Jir.Ast.Rnull -> ())
          | Jir.Ast.Store (x, f, y) ->
              emit (use y ~sid) (use x ~sid)
                (Cfl.Pointer_grammar.Store (field_id f))
                node_id node_id
          | _ -> ())
        n.Cfet.stmts;
      (* boundaries for calls to methods defined in the program *)
      List.iter
        (fun (ci : Cfet.call_info) ->
          match Icfet.meth_idx icfet ci.Cfet.callee_id with
          | None -> ()
          | Some callee_idx -> (
              match
                Icfet.call_id_of_site icfet ~meth:meth_idx ~node:node_id
                  ~sid:ci.Cfet.call_stmt.Jir.Ast.sid
              with
              | None -> ()
              | Some call_id ->
                  let callee_cfet = Icfet.cfet icfet callee_idx in
                  let stmt = ci.Cfet.call_stmt in
                  let sid = stmt.Jir.Ast.sid in
                  (* receiver -> this *)
                  (match receiver_of_call_stmt stmt with
                  | Some r ->
                      let version =
                        (* for constructors the receiver IS the definition *)
                        match stmt.Jir.Ast.kind with
                        | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rnew _))
                        | Jir.Ast.Assign (_, Jir.Ast.Rnew _) ->
                            Varver.def ver ~sid ~var:r
                        | _ -> Varver.use ver ~sid ~var:r
                      in
                      bounds :=
                        Param
                          { arg_var = r; arg_version = version;
                            caller_node = node_id; call_id; formal = this_var }
                        :: !bounds
                  | None -> ());
                  (* positional arguments that are plain variables *)
                  let formals = callee_cfet.Cfet.meth.Jir.Ast.params in
                  List.iteri
                    (fun i arg ->
                      match (arg, List.nth_opt formals i) with
                      | Jir.Ast.Var y, Some (_, formal) ->
                          bounds :=
                            Param
                              { arg_var = y;
                                arg_version = Varver.use ver ~sid ~var:y;
                                caller_node = node_id; call_id; formal }
                            :: !bounds
                      | _ -> ())
                    (args_of_call_stmt stmt);
                  (* value returns from every normal leaf returning a var *)
                  (match lhs_of_call_stmt stmt with
                  | None -> ()
                  | Some lhs_var ->
                      let lhs_version = Varver.def ver ~sid ~var:lhs_var in
                      List.iter
                        (fun leaf ->
                          let ln = Cfet.node callee_cfet leaf in
                          match (ln.Cfet.exit, List.rev ln.Cfet.stmts) with
                          | Some (Cfet.Normal _), last :: _ -> (
                              match last.Jir.Ast.kind with
                              | Jir.Ast.Return (Some (Jir.Ast.Var r)) ->
                                  let callee_vv =
                                    Varver.analyze ln.Cfet.stmts
                                  in
                                  bounds :=
                                    Ret_val
                                      { ret_var = r;
                                        ret_version =
                                          Varver.use callee_vv
                                            ~sid:last.Jir.Ast.sid ~var:r;
                                        leaf; call_id; lhs_var; lhs_version;
                                        caller_node = node_id }
                                    :: !bounds
                              | _ -> ())
                          | _ -> ())
                        callee_cfet.Cfet.leaves)))
        n.Cfet.calls)
    cfet.Cfet.nodes;
  (* artificial assignment edges: a variable read at node entry receives the
     last version of its nearest occurring ancestor *)
  Hashtbl.iter
    (fun node_id (n : Cfet.node) ->
      ignore n;
      let ver = Hashtbl.find vv node_id in
      List.iter
        (fun var ->
          if Varver.is_entry_use ver ~var && node_id <> 0 then begin
            let rec nearest cur =
              if cur = 0 then if node_occurs 0 var then Some 0 else None
              else
                let parent = Cfet.parent_id cur in
                if node_occurs parent var then Some parent
                else nearest parent
            in
            match nearest node_id with
            | Some a ->
                emit
                  (Vvar (var, a, node_last a var))
                  (Vvar (var, node_id, 0))
                  Cfl.Pointer_grammar.Assign a node_id
            | None -> ()
          end)
        (Varver.occurring_vars ver))
    cfet.Cfet.nodes;
  { medges = !medges; bounds = !bounds; allocs = !allocs }

(* ------------------------------------------------------------------ *)
(* Instantiation over the clone tree.                                  *)
(* ------------------------------------------------------------------ *)

let vertex (g : t) ~inst ~meth (r : vref) : int =
  let key, info =
    match r with
    | Vvar (v, node, version) ->
        ( (inst, version + 2, node, Symbol.intern v),
          Var_vertex { inst; var = v; node; version; meth } )
    | Vobj (sid, node) ->
        ((inst, 1, node, sid), Obj_vertex { inst; sid; cls = ""; node; meth; at = Jir.Ast.no_pos })
  in
  match Hashtbl.find_opt g.index key with
  | Some id -> id
  | None ->
      let id = g.n_vertices in
      g.n_vertices <- id + 1;
      if id >= Array.length g.info then begin
        let bigger =
          Array.make (max 1024 (2 * Array.length g.info)) info
        in
        Array.blit g.info 0 bigger 0 (Array.length g.info);
        g.info <- bigger
      end;
      g.info.(id) <- info;
      Hashtbl.replace g.index key id;
      id

exception Too_many_edges of int

let add_edge (g : t) ~max_edges src dst label enc =
  if g.n_edges >= max_edges then raise (Too_many_edges g.n_edges);
  g.edges <- { src; dst; label; enc } :: g.edges;
  g.n_edges <- g.n_edges + 1

(* Build the full inlined alias graph. *)
let build ?(max_edges = 5_000_000) ?(track_null = false)
    ?(exclude = fun _ -> false) (icfet : Icfet.t) (clones : Clone_tree.t) : t =
  let g =
    { icfet; clones; n_vertices = 0; info = [||];
      index = Hashtbl.create 4096; edges = []; n_edges = 0; objects = [] }
  in
  let templates =
    Array.init (Icfet.n_methods icfet) (fun i ->
        build_template ~track_null ~exclude icfet i)
  in
  Array.iter
    (fun (inst : Clone_tree.instance) ->
      let meth = inst.Clone_tree.meth in
      let tpl = templates.(meth) in
      let i = inst.Clone_tree.inst_id in
      (* intra-method edges *)
      List.iter
        (fun te ->
          let src = vertex g ~inst:i ~meth te.tsrc in
          let dst = vertex g ~inst:i ~meth te.tdst in
          add_edge g ~max_edges src dst te.tlabel
            (Encoding.interval ~meth ~first:te.first ~last:te.last))
        tpl.medges;
      (* allocation metadata *)
      List.iter
        (fun (a : alloc_site) ->
          let id = vertex g ~inst:i ~meth (Vobj (a.sid, a.node)) in
          g.info.(id) <-
            Obj_vertex
              { inst = i; sid = a.sid; cls = a.cls; node = a.node; meth;
                at = a.at };
          g.objects <- id :: g.objects)
        tpl.allocs;
      (* cross-clone edges *)
      List.iter
        (fun b ->
          match b with
          | Param { arg_var; arg_version; caller_node; call_id; formal } -> (
              match Clone_tree.callee_instance clones ~caller:i ~call_id with
              | None -> ()
              | Some j ->
                  let callee_meth = (Clone_tree.instance clones j).Clone_tree.meth in
                  let src =
                    vertex g ~inst:i ~meth (Vvar (arg_var, caller_node, arg_version))
                  in
                  let dst = vertex g ~inst:j ~meth:callee_meth (Vvar (formal, 0, 0)) in
                  add_edge g ~max_edges src dst Cfl.Pointer_grammar.Assign
                    (Encoding.call call_id))
          | Ret_val
              { ret_var; ret_version; leaf; call_id; lhs_var; lhs_version;
                caller_node } -> (
              match Clone_tree.callee_instance clones ~caller:i ~call_id with
              | None -> ()
              | Some j ->
                  let callee_meth = (Clone_tree.instance clones j).Clone_tree.meth in
                  let src =
                    vertex g ~inst:j ~meth:callee_meth (Vvar (ret_var, leaf, ret_version))
                  in
                  let dst =
                    vertex g ~inst:i ~meth (Vvar (lhs_var, caller_node, lhs_version))
                  in
                  add_edge g ~max_edges src dst Cfl.Pointer_grammar.Assign
                    (Encoding.ret call_id)))
        tpl.bounds)
    clones.Clone_tree.instances;
  g.objects <- List.rev g.objects;
  g

let n_vertices (g : t) = g.n_vertices
let n_edges (g : t) = g.n_edges
let info (g : t) id = g.info.(id)
let objects (g : t) = g.objects

let iter_edges (g : t) f = List.iter f g.edges

(* ------------------------------------------------------------------ *)
(* Closure-graph slicing.                                              *)
(* ------------------------------------------------------------------ *)

(* Drop every edge [keep] rejects, preserving the order of the survivors
   (edge order seeds the engine deterministically).  Returns the number of
   edges dropped. *)
let filter_edges (g : t) ~keep : int =
  let kept = List.filter keep g.edges in
  let n_kept = List.length kept in
  let dropped = g.n_edges - n_kept in
  g.edges <- kept;
  g.n_edges <- n_kept;
  dropped

(* Slice away Assign-labeled edges that a whole-program points-to analysis
   proves no object can cross.  In the pointer grammar every use of an
   Assign edge extends some FlowsTo(o, src) into FlowsTo(o, dst) — New and
   Load are the only other FlowsTo producers — so an Assign edge whose
   source variable has an empty points-to set supports no derivation at
   all: dropping it leaves the closure, and therefore every warning,
   unchanged.  [reaches ~meth ~var] must answer "may any allocation flow
   into this variable?" conservatively (over-approximation keeps edges,
   never drops live ones); [meth] is the dense ICFET method index carried
   by the vertex.  Returns the number of edges sliced. *)
let slice_assign_edges (g : t) ~(reaches : meth:int -> var:string -> bool) :
    int =
  filter_edges g ~keep:(fun (e : edge) ->
      match e.label with
      | Cfl.Pointer_grammar.Assign -> (
          match g.info.(e.src) with
          | Var_vertex { var; meth; _ } -> reaches ~meth ~var
          | Obj_vertex _ -> true)
      | _ -> true)

let pp_vertex (g : t) ppf id =
  match g.info.(id) with
  | Var_vertex { inst; var; node; version; _ } ->
      Fmt.pf ppf "%s.%d@%d#i%d" var version node inst
  | Obj_vertex { inst; cls; at; _ } ->
      Fmt.pf ppf "obj(%s:%d)#i%d" cls at.Jir.Ast.line inst
